//! The simulated Kademlia network: nodes + event queue + transport.
//!
//! `SimNetwork` is the PeerSim-equivalent driver. It owns every node, the
//! deterministic event queue, the transport (latency + loss) and the RPC
//! bookkeeping (pending requests, timeouts). The experiment harness applies
//! *scenario* actions — joins, silent departures, lookups, disseminations,
//! scheduled compromises — between calls to [`SimNetwork::run_until`], and
//! takes routing-table snapshots that the analysis layer turns into
//! connectivity graphs.
//!
//! Two distinct failure modes exist: a **silent departure**
//! ([`SimNetwork::remove_node`]) stops answering and is eventually evicted
//! by the staleness limit, while a **compromise**
//! ([`SimNetwork::compromise_node`], schedulable through the event kernel
//! via [`SimNetwork::schedule_compromise`]) keeps answering — so it is
//! never evicted — but is excluded from the connectivity graph, per the
//! paper's system model in which a compromised node may drop all traffic.
//! Compromised nodes additionally **withhold stored values** from
//! FIND_VALUE retrievals, the service-level face of the same model.
//!
//! Service telemetry: installing a [`TelemetrySink`] via
//! [`SimNetwork::set_telemetry_sink`] makes every terminating lookup emit
//! one [`LookupRecord`] (purpose, outcome, hop depth, messages, simulated
//! latency). Without a sink the cost is one `Option` check per lookup.
//!
//! Trace trees: when the installed sink answers `true` to
//! [`TelemetrySink::wants_traces`], every lookup RPC additionally becomes
//! an [`RpcSpan`] — send instant, response-or-timeout outcome, the
//! queried node's compromise flag at completion, and a causal parent (the
//! RPC of the same lookup whose completion triggered the dispatch). The
//! finished lookup then emits a full [`TraceTree`] through
//! [`TelemetrySink::on_trace`] right after its flat record; disjoint-path
//! groups merge every member path's spans into one tree. Span recording
//! is observation only — it draws no randomness and schedules nothing, so
//! enabling it cannot change outcomes — and costs nothing when the sink
//! keeps the default `wants_traces() == false`.

use crate::config::{KademliaConfig, RefreshPolicy};
use crate::contact::{Contact, NodeAddr};
use crate::defense::{DefensePolicy, InsertDecision};
use crate::id::NodeId;
use crate::lookup::{partition_seeds, LookupId, LookupPurpose, LookupScratch, LookupState};
use crate::messages::{Message, RequestKind, ResponseBody, RpcId};
use crate::node::KademliaNode;
use crate::slab::GenSlab;
use crate::snapshot::RoutingSnapshot;
use dessim::event::EventId;
use dessim::metrics::{Counters, HotCounter};
use dessim::rng::RngFactory;
use dessim::scheduler::EventQueue;
use dessim::time::SimTime;
use dessim::transport::Transport;
use kad_telemetry::{
    DefenseAction, LookupOutcome, LookupRecord, RpcSpan, SpanOutcome, TelemetrySink, TracePurpose,
    TraceTree,
};
use rand::rngs::SmallRng;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Events processed by the network driver.
#[derive(Clone, Debug)]
pub enum SimEvent {
    /// A message arrives at a node.
    Deliver {
        /// Destination address.
        to: NodeAddr,
        /// The message.
        msg: Message,
    },
    /// An RPC's response did not arrive in time.
    RpcTimeout {
        /// The request that timed out.
        rpc_id: RpcId,
    },
    /// A node's periodic bucket refresh is due.
    RefreshTick {
        /// The refreshing node.
        node: NodeAddr,
    },
    /// The attacker's scheduled compromise of a node fires (see
    /// [`SimNetwork::schedule_compromise`]).
    Compromise {
        /// The node being compromised.
        node: NodeAddr,
    },
    /// A node's periodic defense liveness-probe tick is due (only
    /// scheduled while a [`DefensePolicy`] with a probe interval is
    /// installed — see [`SimNetwork::set_defense_policy`]).
    DefenseTick {
        /// The probing node.
        node: NodeAddr,
    },
}

/// The (optional) telemetry sink. A newtype so [`SimNetwork`] can keep
/// deriving `Debug` without requiring `Debug` of sink implementations.
#[derive(Default)]
struct TelemetrySlot(Option<Box<dyn TelemetrySink>>);

impl fmt::Debug for TelemetrySlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "TelemetrySlot(installed)"
        } else {
            "TelemetrySlot(none)"
        })
    }
}

/// The (optional) defense policy. A newtype so [`SimNetwork`] can keep
/// deriving `Debug` without requiring `Debug` of policy implementations.
#[derive(Default)]
struct DefenseSlot(Option<Box<dyn DefensePolicy>>);

impl fmt::Debug for DefenseSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.as_ref() {
            Some(policy) => write!(f, "DefenseSlot({})", policy.label()),
            None => f.write_str("DefenseSlot(none)"),
        }
    }
}

/// One in-flight disjoint-path retrieval: `d` independent sub-lookups
/// over disjoint candidate sets, reported as a single
/// [`TracePurpose::RetrieveDisjoint`] record once every path terminated.
#[derive(Debug)]
struct DisjointGroup {
    /// The node running every path.
    origin: NodeAddr,
    /// The retrieved key.
    key: NodeId,
    /// Sub-lookup ids (used to early-terminate siblings on a hit).
    members: Vec<LookupId>,
    /// Paths that have not terminated yet.
    remaining: usize,
    /// Whether any path found the value.
    value_found: bool,
    /// Hop depth of the first value hit (or of the closest responder).
    hops: u32,
    /// Queries handed out across all paths.
    messages: u32,
    /// Responses received across all paths.
    responded: u32,
    /// When the group started (for the synthesized record's latency).
    started: SimTime,
    /// Node ids claimed by some path: candidates are filtered against
    /// this set when merged, which keeps the paths vertex-disjoint.
    claimed: HashSet<NodeId>,
    /// Spans of every terminated member path (populated only while the
    /// sink wants traces; the group emits them as one tree).
    trace_spans: Vec<RpcSpan>,
    /// The RPC whose completion terminated the last member — the root of
    /// the group's critical path.
    trace_final: Option<RpcId>,
}

/// Slot sentinel: this pending RPC recorded no trace span.
const NO_TRACE_SLOT: usize = usize::MAX;

/// Pool-size cap: bounds idle memory without throttling steady state (the
/// number of buffers simultaneously out of the pool is bounded by in-flight
/// RPCs, which the cap comfortably exceeds at every supported scale).
const MAX_POOLED_BUFS: usize = 8192;

/// Pooled scratch buffers for the event loop's hot paths.
///
/// Contact buffers cycle: one leaves the pool to carry a response body,
/// rides the event queue inside the message, and returns to the pool when
/// the response is consumed — or when the message is lost in transit or
/// delivered to a dead node. Lookup arenas cycle between
/// [`LookupState::with_scratch`] and [`LookupState::into_scratch`]. After
/// warm-up every pool sits at its high-water mark and the steady-state
/// event loop performs zero heap allocations.
#[derive(Debug, Default)]
struct NetScratch {
    /// Recycled contact vectors (response bodies, lookup seeds).
    contact_bufs: Vec<Vec<Contact>>,
    /// Recycled per-lookup shortlist arenas.
    lookup_arenas: Vec<LookupScratch>,
    /// The query buffer `drive_lookup` borrows via `mem::take`.
    queries: Vec<Contact>,
    /// The STORE-target buffer for finished disseminations.
    store_targets: Vec<Contact>,
}

/// Capacity every pooled contact buffer is created with, and the floor a
/// buffer must meet to re-enter the pool. `closest_into`'s bounded band
/// collection peaks at `count + bucket capacity` contacts, and the
/// largest `count` on the hot path is the lookup shortlist (`3k`), so
/// `4k = 80` at the paper's `k = 20` — 128 covers that with slack.
/// Normalizing capacity at the pool boundary matters for the
/// zero-allocation gate: without it, each buffer *individually* doubles
/// its way to the working-set bound over many recyclings, and with
/// hundreds of buffers cycling randomly that growth trickles on for
/// hours of simulated time.
const CONTACT_BUF_CAP: usize = 128;

impl NetScratch {
    fn take_contacts(&mut self) -> Vec<Contact> {
        self.contact_bufs
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(CONTACT_BUF_CAP))
    }

    /// Adds up to `count` full-capacity buffers to the pool (bounded by
    /// [`MAX_POOLED_BUFS`]); called once per spawned node.
    fn pre_mint_contacts(&mut self, count: usize) {
        let target = MAX_POOLED_BUFS.min(self.contact_bufs.len() + count);
        while self.contact_bufs.len() < target {
            self.contact_bufs.push(Vec::with_capacity(CONTACT_BUF_CAP));
        }
    }

    /// Returns a buffer to the pool. Undersized buffers — one whose
    /// storage was taken into a response body (capacity zero), or a body
    /// built before capacity normalization — are dropped; replacements
    /// are minted at full capacity by [`NetScratch::take_contacts`].
    fn recycle_contacts(&mut self, mut buf: Vec<Contact>) {
        if buf.capacity() >= CONTACT_BUF_CAP && self.contact_bufs.len() < MAX_POOLED_BUFS {
            buf.clear();
            self.contact_bufs.push(buf);
        }
    }

    fn take_lookup(&mut self) -> LookupScratch {
        self.lookup_arenas.pop().unwrap_or_default()
    }

    fn recycle_lookup(&mut self, arena: LookupScratch) {
        if self.lookup_arenas.len() < MAX_POOLED_BUFS {
            self.lookup_arenas.push(arena);
        }
    }
}

/// A request awaiting its response.
#[derive(Clone, Debug)]
struct PendingRpc {
    requester: NodeAddr,
    to: Contact,
    lookup: Option<LookupId>,
    timeout_event: EventId,
    /// Index of this RPC's span in its lookup's trace buffer
    /// ([`NO_TRACE_SLOT`] when tracing was off or no buffer existed).
    /// Keeping the slot here spares a per-RPC side-table on the hot path.
    trace_slot: usize,
}

/// Span buffer of one in-progress lookup (only allocated while the sink
/// wants traces).
#[derive(Debug, Default)]
struct TraceBuffer {
    /// Spans in send order; open spans keep [`SpanOutcome::Inflight`].
    spans: Vec<RpcSpan>,
    /// Admission-queue wait annotated by the load engine, milliseconds.
    queue_wait_ms: u64,
}

/// All span-recording state, empty unless the installed sink wants
/// traces. Recording is observation only: no randomness, no scheduling.
#[derive(Debug, Default)]
struct TraceState {
    /// Per-lookup span buffers, created with the lookup.
    buffers: HashMap<LookupId, TraceBuffer>,
    /// The RPC completion currently being processed, with its lookup:
    /// queries dispatched while it is set record it as their causal
    /// parent (same lookup only — a repair lookup started from another
    /// lookup's timeout is a fresh root).
    cause: Option<(RpcId, LookupId)>,
    /// Queue wait to stamp on the next created lookup (set by
    /// [`SimNetwork::start_find_value_queued`] just before the start).
    pending_queue_wait_ms: u64,
}

/// The simulated network (see module docs).
#[derive(Debug)]
pub struct SimNetwork {
    config: KademliaConfig,
    transport: Transport,
    nodes: Vec<KademliaNode>,
    queue: EventQueue<SimEvent>,
    /// In-flight RPCs in a generation-indexed slab: the [`RpcId`] *is* the
    /// slab key (`generation << 32 | slot`), so a timeout firing after its
    /// RPC completed and its slot was reused misses cleanly.
    pending: GenSlab<PendingRpc>,
    next_lookup_id: LookupId,
    /// Pooled hot-path buffers (see [`NetScratch`]).
    scratch: NetScratch,
    transport_rng: SmallRng,
    refresh_rng: SmallRng,
    id_rng: SmallRng,
    counters: Counters,
    alive_count: usize,
    compromised_count: usize,
    /// Telemetry sink; `None` (the default) costs one discriminant check
    /// per lookup completion.
    sink: TelemetrySlot,
    /// Start instants of in-progress lookups, tracked only while a sink is
    /// installed (the trace record needs the simulated latency).
    lookup_started: HashMap<LookupId, SimTime>,
    /// Whether the installed sink wants trace trees (asked once at
    /// install time); gates all span recording behind one bool check.
    traces_on: bool,
    /// Span-recording state, empty unless `traces_on`.
    trace: TraceState,
    /// Defense policy; `None` (the default) costs one discriminant check
    /// per routing-table insert.
    defense: DefenseSlot,
    /// Sub-lookup → disjoint-group membership.
    disjoint: HashMap<LookupId, u64>,
    /// In-flight disjoint-path retrieval groups by group id.
    groups: HashMap<u64, DisjointGroup>,
    next_group_id: u64,
}

impl SimNetwork {
    /// Creates an empty network.
    ///
    /// `seed` drives every random decision (ids, latencies, loss, refresh
    /// targets) through independent labelled streams, so identical seeds
    /// reproduce identical runs.
    pub fn new(config: KademliaConfig, transport: Transport, seed: u64) -> Self {
        let factory = RngFactory::new(seed);
        SimNetwork {
            config,
            transport,
            nodes: Vec::new(),
            queue: EventQueue::new(),
            pending: GenSlab::new(),
            next_lookup_id: 0,
            scratch: NetScratch::default(),
            transport_rng: factory.stream("transport"),
            refresh_rng: factory.stream("refresh"),
            id_rng: factory.stream("node-ids"),
            counters: Counters::new(),
            alive_count: 0,
            compromised_count: 0,
            sink: TelemetrySlot(None),
            lookup_started: HashMap::new(),
            traces_on: false,
            trace: TraceState::default(),
            defense: DefenseSlot(None),
            disjoint: HashMap::new(),
            groups: HashMap::new(),
            next_group_id: 0,
        }
    }

    /// Installs a telemetry sink: every lookup that terminates from now on
    /// emits one [`LookupRecord`] through it. Install the sink *before*
    /// starting the traffic to be measured — lookups already in flight
    /// have no tracked start instant and report a zero start time.
    pub fn set_telemetry_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.traces_on = sink.wants_traces();
        self.trace = TraceState::default();
        self.sink = TelemetrySlot(Some(sink));
    }

    /// Removes the telemetry sink, returning to no-op accounting.
    pub fn clear_telemetry_sink(&mut self) {
        self.sink = TelemetrySlot(None);
        self.lookup_started.clear();
        self.traces_on = false;
        self.trace = TraceState::default();
    }

    /// Installs a defense policy. Every node of the network shares the
    /// instance: new routing-table inserts run through
    /// [`DefensePolicy::decide_insert`], evictions consult
    /// [`DefensePolicy::repair_target`], and — when the policy declares a
    /// [`DefensePolicy::probe_interval`] — each alive node gets a
    /// periodic [`SimEvent::DefenseTick`] sending liveness PINGs at the
    /// contacts the policy picks. Nodes spawned later are scheduled at
    /// spawn time, so installing before or after building the overlay
    /// both work.
    pub fn set_defense_policy(&mut self, policy: Box<dyn DefensePolicy>) {
        let interval = policy.probe_interval();
        self.defense = DefenseSlot(Some(policy));
        if let Some(iv) = interval {
            for addr in self.alive_addrs() {
                self.queue
                    .schedule_after(iv, SimEvent::DefenseTick { node: addr });
            }
        }
    }

    /// Label of the installed defense policy, if any.
    pub fn defense_label(&self) -> Option<&'static str> {
        self.defense.0.as_ref().map(|p| p.label())
    }

    /// The protocol configuration.
    pub fn config(&self) -> &KademliaConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Event counters (messages sent/lost, lookups, timeouts, …).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Number of alive nodes (compromised nodes are alive on the wire and
    /// therefore included — see [`SimNetwork::honest_count`]).
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Number of alive **compromised** nodes.
    pub fn compromised_count(&self) -> usize {
        self.compromised_count
    }

    /// Number of honest alive nodes — the vertex count of the connectivity
    /// graph the next [`SimNetwork::snapshot`] captures.
    pub fn honest_count(&self) -> usize {
        self.alive_count - self.compromised_count
    }

    /// Total nodes ever spawned (alive and departed).
    pub fn spawned_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a node by address.
    ///
    /// # Panics
    ///
    /// Panics if the address was never spawned.
    pub fn node(&self, addr: NodeAddr) -> &KademliaNode {
        &self.nodes[addr.index()]
    }

    /// Addresses of all currently alive nodes, ascending (compromised nodes
    /// included — they are alive on the wire).
    pub fn alive_addrs(&self) -> Vec<NodeAddr> {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.contact.addr)
            .collect()
    }

    /// Addresses of the honest alive nodes, ascending — the attack surface
    /// an adversary picks fresh victims from, and the vertex set of the
    /// next snapshot.
    pub fn honest_addrs(&self) -> Vec<NodeAddr> {
        self.nodes
            .iter()
            .filter(|n| n.participates())
            .map(|n| n.contact.addr)
            .collect()
    }

    /// Creates a new node with a fresh random id. The node is alive (it
    /// answers requests) but knows nobody until [`SimNetwork::join`].
    pub fn spawn_node(&mut self) -> NodeAddr {
        let addr = NodeAddr(self.nodes.len() as u32);
        let id = NodeId::random(&mut self.id_rng, self.config.bits);
        let contact = Contact::new(id, addr);
        self.nodes
            .push(KademliaNode::new(contact, &self.config, self.now()));
        self.alive_count += 1;
        self.counters.incr("node_spawned");
        // Pre-mint pooled response buffers in proportion to network size:
        // peak buffers-in-flight tracks the minute-start lookup burst
        // (every node firing α queries at once), and minting here — in
        // the topology phase — keeps that growth off the event loop.
        self.scratch.pre_mint_contacts(8);
        // A node's defense-tick chain starts exactly once: here for nodes
        // spawned after the policy was installed, in `set_defense_policy`
        // for nodes alive at install time.
        if let Some(iv) = self.defense.0.as_ref().and_then(|p| p.probe_interval()) {
            self.queue
                .schedule_after(iv, SimEvent::DefenseTick { node: addr });
        }
        addr
    }

    /// Joins the network: seeds the routing table with the bootstrap
    /// contact, looks up the node's own id (which advertises the joiner to
    /// the nodes it queries), and schedules the periodic bucket refresh.
    ///
    /// # Panics
    ///
    /// Panics if `addr` or the bootstrap address was never spawned.
    pub fn join(&mut self, addr: NodeAddr, bootstrap: Option<NodeAddr>) {
        if let Some(b) = bootstrap {
            let bc = self.nodes[b.index()].contact;
            self.offer_contact(addr, bc);
            self.nodes[addr.index()].bootstrap = Some(bc);
        }
        let own_id = self.nodes[addr.index()].id();
        self.start_lookup_internal(addr, own_id, LookupPurpose::Bootstrap);
        self.queue.schedule_after(
            self.config.refresh_interval,
            SimEvent::RefreshTick { node: addr },
        );
        self.counters.incr("node_joined");
    }

    /// Removes a node silently (churn / failure): it stops answering but
    /// remains in other nodes' routing tables until the staleness limit
    /// evicts it.
    ///
    /// Returns `false` if the node was already gone.
    pub fn remove_node(&mut self, addr: NodeAddr) -> bool {
        let node = &mut self.nodes[addr.index()];
        if !node.alive {
            return false;
        }
        node.alive = false;
        let compromised = node.compromised;
        // Drain the dying node's lookups in insertion order (LookupTable
        // guarantees deterministic traversal) and reclaim their arenas.
        let mut lookups = std::mem::take(&mut node.lookups);
        for (id, state) in lookups.drain() {
            self.lookup_started.remove(&id);
            self.trace.buffers.remove(&id);
            // Disjoint-path groups die with their origin: drop the group
            // (all members run at the same node) without emitting.
            if let Some(gid) = self.disjoint.remove(&id) {
                self.groups.remove(&gid);
            }
            self.scratch.recycle_lookup(state.into_scratch());
        }
        // Hand the (empty) table back so its capacity survives.
        self.nodes[addr.index()].lookups = lookups;
        self.alive_count -= 1;
        if compromised {
            // A compromised machine can still churn away; it stops counting
            // against the attacker's live foothold.
            self.compromised_count -= 1;
        }
        self.counters.incr("node_removed");
        true
    }

    /// Compromises a node immediately (the attack equivalent of
    /// [`SimNetwork::remove_node`], but with different semantics): the node
    /// **keeps answering** requests — mimicking honest behavior so it is
    /// never evicted and keeps occupying routing-table slots — yet it is
    /// excluded from snapshots and all `κ` accounting, because the paper's
    /// system model lets a compromised node drop all traffic at will.
    ///
    /// Returns `false` if the node is dead or already compromised.
    pub fn compromise_node(&mut self, addr: NodeAddr) -> bool {
        let node = &mut self.nodes[addr.index()];
        if !node.alive || node.compromised {
            return false;
        }
        node.compromised = true;
        self.compromised_count += 1;
        self.counters.incr("node_compromised");
        true
    }

    /// Schedules a compromise of `addr` at simulated time `at` through the
    /// event queue — the hook attack campaigns use to interleave compromises
    /// with protocol traffic and churn at exact instants. The event is a
    /// no-op if the node departs (or is compromised) before it fires.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past of the simulation clock.
    pub fn schedule_compromise(&mut self, at: SimTime, addr: NodeAddr) -> EventId {
        self.counters.incr("compromise_scheduled");
        self.queue
            .schedule_at(at, SimEvent::Compromise { node: addr })
    }

    /// Whether `addr` is currently alive and compromised.
    pub fn is_compromised(&self, addr: NodeAddr) -> bool {
        let node = &self.nodes[addr.index()];
        node.alive && node.compromised
    }

    /// Starts a lookup for `target` at `addr` (the paper's "lookup
    /// procedure"). Returns the lookup id, or `None` if the node is dead.
    pub fn start_lookup(&mut self, addr: NodeAddr, target: NodeId) -> Option<LookupId> {
        if !self.nodes[addr.index()].alive {
            return None;
        }
        self.counters.incr("lookup_started");
        Some(self.start_lookup_internal(addr, target, LookupPurpose::Locate))
    }

    /// Starts a dissemination of `key` at `addr`: locate the `k` closest
    /// nodes, then STORE the object on them.
    pub fn start_store(&mut self, addr: NodeAddr, key: NodeId) -> Option<LookupId> {
        if !self.nodes[addr.index()].alive {
            return None;
        }
        self.counters.incr("store_started");
        Some(self.start_lookup_internal(addr, key, LookupPurpose::Disseminate))
    }

    /// Starts a retrieval of `key` at `addr` (FIND_VALUE): an iterative
    /// lookup that ends as soon as a queried node serves the value. The
    /// dissemination-durability probe drives this to measure whether
    /// stored objects are still reachable. Returns the lookup id, or
    /// `None` if the node is dead.
    pub fn start_find_value(&mut self, addr: NodeAddr, key: NodeId) -> Option<LookupId> {
        self.start_find_value_queued(addr, key, 0)
    }

    /// [`SimNetwork::start_find_value`] with an admission-queue wait
    /// annotation: the load engine passes the simulated milliseconds the
    /// request spent queued before being issued, and the value is stamped
    /// on the lookup's [`TraceTree`] (prepended to its critical path).
    /// Pure observation — with tracing off (or a zero wait) this is
    /// exactly `start_find_value`.
    pub fn start_find_value_queued(
        &mut self,
        addr: NodeAddr,
        key: NodeId,
        queue_wait_ms: u64,
    ) -> Option<LookupId> {
        if !self.nodes[addr.index()].alive {
            return None;
        }
        self.counters.incr("retrieve_started");
        if self.traces_on {
            self.trace.pending_queue_wait_ms = queue_wait_ms;
        }
        let id = self.start_lookup_internal(addr, key, LookupPurpose::Retrieve);
        if self.traces_on {
            self.trace.pending_queue_wait_ms = 0;
        }
        Some(id)
    }

    /// Starts a **disjoint-path** retrieval of `key` at `addr`: up to `d`
    /// independent α-lookups over disjoint first-hop sets (seeds dealt
    /// round-robin in distance order; merged candidates are filtered
    /// against the contacts claimed by sibling paths, keeping the paths
    /// vertex-disjoint). The retrieval succeeds if **any** path reaches
    /// an honest holder — the S/Kademlia countermeasure against
    /// value-withholding compromised nodes sitting on the single best
    /// path. One [`TracePurpose::RetrieveDisjoint`] record is emitted
    /// when the last path terminates; sub-lookups stay silent.
    ///
    /// `d <= 1` degrades to a plain [`SimNetwork::start_find_value`].
    /// Returns the id carried by the emitted record (`d > 1`: the first
    /// sub-lookup's), or `None` if the node is dead.
    pub fn start_find_value_disjoint(
        &mut self,
        addr: NodeAddr,
        key: NodeId,
        d: usize,
    ) -> Option<LookupId> {
        if d <= 1 {
            return self.start_find_value(addr, key);
        }
        if !self.nodes[addr.index()].alive {
            return None;
        }
        self.counters.incr("retrieve_disjoint_started");
        let node = &mut self.nodes[addr.index()];
        let mut seeds = node.routing.closest(&key, self.config.shortlist_capacity());
        if seeds.is_empty() {
            if let Some(b) = node.bootstrap {
                seeds.push(b);
                self.counters.incr("bootstrap_reseed");
            }
        }
        let mut paths = partition_seeds(seeds, d);
        if paths.is_empty() {
            // Not a single seed: run one empty path so the group still
            // terminates (immediately, as ValueMissing).
            paths.push(Vec::new());
        }
        let mut claimed: HashSet<NodeId> = HashSet::new();
        for path in &paths {
            claimed.extend(path.iter().map(|c| c.id));
        }
        let remaining = paths.len();
        let members: Vec<LookupId> = paths
            .into_iter()
            .map(|path| self.create_lookup(addr, key, LookupPurpose::Retrieve, &path, false))
            .collect();
        let gid = self.next_group_id;
        self.next_group_id += 1;
        for &id in &members {
            self.disjoint.insert(id, gid);
        }
        let first = members[0];
        self.groups.insert(
            gid,
            DisjointGroup {
                origin: addr,
                key,
                members: members.clone(),
                remaining,
                value_found: false,
                hops: 0,
                messages: 0,
                responded: 0,
                started: self.queue.now(),
                claimed,
                trace_spans: Vec::new(),
                trace_final: None,
            },
        );
        for id in members {
            self.drive_lookup(addr, id);
        }
        Some(first)
    }

    /// Runs the event loop until simulated time `t`, then advances the
    /// clock to exactly `t` (convenient for aligning snapshots).
    pub fn run_until(&mut self, t: SimTime) {
        while let Some((_, event)) = self.queue.pop_before(t) {
            self.dispatch(event);
        }
        self.queue.advance_to(t);
    }

    /// Drains every pending event. Only sensible in tests and small
    /// examples; scenario runs always bound time with `run_until`.
    pub fn run_to_quiescence(&mut self) {
        while let Some((_, event)) = self.queue.pop_before(SimTime::MAX) {
            self.dispatch(event);
        }
    }

    /// Captures the connectivity snapshot: every honest alive node and one
    /// edge per routing-table entry pointing at another honest alive node
    /// (compromised nodes are excluded from `κ` accounting — see
    /// [`SimNetwork::compromise_node`]).
    pub fn snapshot(&self) -> RoutingSnapshot {
        RoutingSnapshot::capture(self.now(), &self.nodes)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn start_lookup_internal(
        &mut self,
        addr: NodeAddr,
        target: NodeId,
        purpose: LookupPurpose,
    ) -> LookupId {
        let mut seeds = self.scratch.take_contacts();
        let node = &self.nodes[addr.index()];
        node.routing
            .closest_into(&target, self.config.shortlist_capacity(), &mut seeds);
        let bootstrap = node.bootstrap;
        if seeds.is_empty() {
            // Empty routing table (join request lost, or heavy loss evicted
            // everything): fall back to the remembered bootstrap contact so
            // the node keeps retrying instead of staying isolated forever.
            if let Some(b) = bootstrap {
                seeds.push(b);
                self.counters.incr("bootstrap_reseed");
            }
        }
        let id = self.create_lookup(addr, target, purpose, &seeds, true);
        self.scratch.recycle_contacts(seeds);
        self.drive_lookup(addr, id);
        id
    }

    /// Registers a lookup without driving it (disjoint-path groups must
    /// register every member before the first one makes progress).
    /// `track_start` records the start instant for the telemetry record;
    /// sub-lookups pass `false` (their group tracks its own start).
    fn create_lookup(
        &mut self,
        addr: NodeAddr,
        target: NodeId,
        purpose: LookupPurpose,
        seeds: &[Contact],
        track_start: bool,
    ) -> LookupId {
        let id = self.next_lookup_id;
        self.next_lookup_id += 1;
        let arena = self.scratch.take_lookup();
        let node = &mut self.nodes[addr.index()];
        let state =
            LookupState::with_scratch(id, target, purpose, node.id(), seeds, &self.config, arena);
        node.lookups.insert(state);
        if track_start && self.sink.0.is_some() {
            self.lookup_started.insert(id, self.queue.now());
        }
        if self.traces_on {
            self.trace.buffers.insert(
                id,
                TraceBuffer {
                    spans: Vec::with_capacity(8),
                    queue_wait_ms: self.trace.pending_queue_wait_ms,
                },
            );
        }
        id
    }

    /// Advances a lookup: sends fresh queries or finalizes it.
    ///
    /// Uses the pooled query buffer via `mem::take` (dispatching queries
    /// re-enters `send_request`, never `drive_lookup` itself, so one
    /// buffer suffices) and recycles the finished lookup's arena.
    fn drive_lookup(&mut self, addr: NodeAddr, lookup_id: LookupId) {
        let _span = kad_telemetry::span::span("lookup-dispatch");
        let mut queries = std::mem::take(&mut self.scratch.queries);
        let finished = {
            let node = &mut self.nodes[addr.index()];
            match node.lookups.get_mut(lookup_id) {
                Some(state) => {
                    state.next_queries_into(&mut queries);
                    state.is_finished()
                }
                None => {
                    self.scratch.queries = queries;
                    return;
                }
            }
        };
        if finished {
            let state = self.nodes[addr.index()]
                .lookups
                .remove(lookup_id)
                .expect("finished lookup present");
            self.counters.incr_hot(HotCounter::LookupFinished);
            self.finalize_lookup(&state);
            if state.purpose() == LookupPurpose::Disseminate {
                let key = state.target();
                let mut targets = std::mem::take(&mut self.scratch.store_targets);
                state.closest_responded_into(self.config.k, &mut targets);
                for &c in &targets {
                    self.send_request(addr, c, RequestKind::Store(key), None);
                    self.counters.incr("store_rpc_sent");
                }
                targets.clear();
                self.scratch.store_targets = targets;
            }
            self.scratch.recycle_lookup(state.into_scratch());
            self.scratch.queries = queries;
            return;
        }
        let (target, purpose) = {
            let node = &self.nodes[addr.index()];
            match node.lookups.get(lookup_id) {
                Some(s) => (s.target(), s.purpose()),
                None => {
                    self.scratch.queries = queries;
                    return;
                }
            }
        };
        let kind = if purpose == LookupPurpose::Retrieve {
            RequestKind::FindValue(target)
        } else {
            RequestKind::FindNode(target)
        };
        for &c in &queries {
            self.send_request(addr, c, kind, Some(lookup_id));
        }
        queries.clear();
        self.scratch.queries = queries;
    }

    /// Routes a terminated lookup to its accounting: disjoint-path
    /// members are absorbed into their group, everything else emits its
    /// own trace record.
    fn finalize_lookup(&mut self, state: &LookupState) {
        if let Some(gid) = self.disjoint.remove(&state.id()) {
            self.absorb_into_group(gid, state);
        } else {
            self.emit_lookup_record(state);
        }
    }

    /// Folds a terminated disjoint-path member into its group; the last
    /// member to terminate emits the group's single synthesized record.
    /// The first value hit marks every sibling found, terminating them
    /// early ("any path returns the value" semantics).
    fn absorb_into_group(&mut self, gid: u64, state: &LookupState) {
        let Some(group) = self.groups.get_mut(&gid) else {
            return;
        };
        if self.traces_on {
            if let Some(buf) = self.trace.buffers.remove(&state.id()) {
                group.trace_spans.extend(buf.spans);
            }
        }
        group.remaining -= 1;
        group.messages += state.messages_sent();
        group.responded += state.responded() as u32;
        let newly_found = state.value_found() && !group.value_found;
        if newly_found {
            group.value_found = true;
            group.hops = state.result_hops();
            self.counters.incr("disjoint_value_hit");
        } else if !group.value_found {
            let hops = state.result_hops();
            if hops > 0 && (group.hops == 0 || hops < group.hops) {
                group.hops = hops;
            }
        }
        let done = group.remaining == 0;
        if newly_found {
            let origin = group.origin;
            let members = group.members.clone();
            let finished_id = state.id();
            for member in members {
                if member != finished_id {
                    if let Some(sibling) = self.nodes[origin.index()].lookups.get_mut(member) {
                        sibling.mark_value_found();
                    }
                }
            }
        }
        if done {
            let mut group = self.groups.remove(&gid).expect("group still registered");
            if self.traces_on {
                // The critical path of the group is the dependency chain
                // of the member whose termination completed it.
                group.trace_final = self
                    .trace
                    .cause
                    .and_then(|(rpc, owner)| (owner == state.id()).then_some(rpc));
            }
            self.emit_group_record(group);
        }
    }

    /// Emits the synthesized record of a completed disjoint-path group,
    /// if a telemetry sink is installed.
    fn emit_group_record(&mut self, group: DisjointGroup) {
        let Some(sink) = self.sink.0.as_mut() else {
            return;
        };
        let record = LookupRecord {
            lookup_id: group.members[0],
            target: *group.key.as_bytes(),
            purpose: TracePurpose::RetrieveDisjoint,
            outcome: if group.value_found {
                LookupOutcome::ValueFound
            } else {
                LookupOutcome::ValueMissing
            },
            hops: group.hops,
            messages: group.messages,
            responded: group.responded,
            started_ms: group.started.as_millis(),
            completed_ms: self.queue.now().as_millis(),
        };
        sink.on_lookup(&record);
        if self.traces_on {
            let tree = build_trace_tree(record, 0, group.trace_spans, group.trace_final);
            sink.on_trace(&tree);
        }
    }

    /// Builds and emits the trace record of a terminated lookup, if a
    /// telemetry sink is installed.
    fn emit_lookup_record(&mut self, state: &LookupState) {
        let Some(sink) = self.sink.0.as_mut() else {
            return;
        };
        let started = self
            .lookup_started
            .remove(&state.id())
            .unwrap_or(SimTime::ZERO);
        let purpose = match state.purpose() {
            LookupPurpose::Locate => TracePurpose::Locate,
            LookupPurpose::Disseminate => TracePurpose::Disseminate,
            LookupPurpose::Retrieve => TracePurpose::Retrieve,
            LookupPurpose::Refresh => TracePurpose::Refresh,
            LookupPurpose::Bootstrap => TracePurpose::Bootstrap,
            LookupPurpose::Repair => TracePurpose::Repair,
        };
        let outcome = if state.purpose() == LookupPurpose::Retrieve {
            if state.value_found() {
                LookupOutcome::ValueFound
            } else {
                LookupOutcome::ValueMissing
            }
        } else if state.responded() >= self.config.k {
            LookupOutcome::Converged
        } else if state.responded() > 0 {
            LookupOutcome::Partial
        } else {
            LookupOutcome::Failed
        };
        let record = LookupRecord {
            lookup_id: state.id(),
            target: *state.target().as_bytes(),
            purpose,
            outcome,
            hops: state.result_hops(),
            messages: state.messages_sent(),
            responded: state.responded() as u32,
            started_ms: started.as_millis(),
            completed_ms: self.queue.now().as_millis(),
        };
        sink.on_lookup(&record);
        if self.traces_on {
            if let Some(buf) = self.trace.buffers.remove(&state.id()) {
                let final_rpc = self
                    .trace
                    .cause
                    .and_then(|(rpc, owner)| (owner == state.id()).then_some(rpc));
                let tree = build_trace_tree(record, buf.queue_wait_ms, buf.spans, final_rpc);
                if let Some(sink) = self.sink.0.as_mut() {
                    sink.on_trace(&tree);
                }
            }
        }
    }

    /// Offers a learned contact to `addr`'s routing table, with the
    /// installed defense policy vetting inserts of contacts not already
    /// stored (refreshes of known contacts always pass). Without a policy
    /// this is exactly `routing.offer` plus one `Option` check.
    fn offer_contact(&mut self, addr: NodeAddr, contact: Contact) {
        let now = self.queue.now();
        let node = &mut self.nodes[addr.index()];
        if let Some(policy) = self.defense.0.as_mut() {
            if !node.routing.contains(&contact.id) {
                if let Some(idx) = node.routing.bucket_index(&contact.id) {
                    let own = node.routing.own_id();
                    match policy.decide_insert(&own, node.routing.bucket(idx), idx, &contact) {
                        InsertDecision::Admit => {}
                        InsertDecision::Reject => {
                            self.counters.incr("defense_diversity_reject");
                            if let Some(sink) = self.sink.0.as_mut() {
                                sink.on_defense(DefenseAction::DiversityReject);
                            }
                            return;
                        }
                        InsertDecision::Replace(old) => {
                            node.routing.remove(&old);
                            self.counters.incr("defense_diversity_replace");
                            if let Some(sink) = self.sink.0.as_mut() {
                                sink.on_defense(DefenseAction::DiversityReplace);
                            }
                        }
                    }
                }
            }
        }
        node.routing.offer(contact, now);
    }

    /// A node's defense liveness-probe tick: the policy picks stale
    /// contacts, each gets a PING (whose timeout feeds the staleness
    /// limit and so evicts silently-departed contacts), and the chain
    /// reschedules itself while the node stays alive.
    fn on_defense_tick(&mut self, addr: NodeAddr) {
        if !self.nodes[addr.index()].alive {
            return; // the chain ends with the node
        }
        let now = self.queue.now();
        let (interval, targets) = {
            let Some(policy) = self.defense.0.as_mut() else {
                return;
            };
            let Some(interval) = policy.probe_interval() else {
                return;
            };
            let targets = policy.probe_targets(&self.nodes[addr.index()].routing, now);
            (interval, targets)
        };
        self.counters.incr("defense_tick");
        for contact in targets {
            self.counters.incr("defense_probe");
            if let Some(sink) = self.sink.0.as_mut() {
                sink.on_defense(DefenseAction::Probe);
            }
            self.send_request(addr, contact, RequestKind::Ping, None);
        }
        self.queue
            .schedule_after(interval, SimEvent::DefenseTick { node: addr });
    }

    fn send_request(
        &mut self,
        from: NodeAddr,
        to: Contact,
        kind: RequestKind,
        lookup: Option<LookupId>,
    ) {
        // The slab key doubles as the RpcId; `next_key` lets the timeout
        // event and trace span carry it before the insert happens.
        let rpc_id = self.pending.next_key();
        let timeout_event = self
            .queue
            .schedule_after(self.config.rpc_timeout, SimEvent::RpcTimeout { rpc_id });
        let mut trace_slot = NO_TRACE_SLOT;
        if self.traces_on {
            if let Some(lookup_id) = lookup {
                if let Some(buf) = self.trace.buffers.get_mut(&lookup_id) {
                    let caused_by = self
                        .trace
                        .cause
                        .and_then(|(rpc, owner)| (owner == lookup_id).then_some(rpc));
                    trace_slot = buf.spans.len();
                    buf.spans.push(RpcSpan {
                        rpc_id,
                        to_node: to.addr.index() as u32,
                        to_compromised: false,
                        sent_ms: self.queue.now().as_millis(),
                        completed_ms: 0,
                        outcome: SpanOutcome::Inflight,
                        caused_by,
                    });
                }
            }
        }
        let assigned = self.pending.insert(PendingRpc {
            requester: from,
            to,
            lookup,
            timeout_event,
            trace_slot,
        });
        debug_assert_eq!(assigned, rpc_id, "next_key predicted the slab key");
        self.counters.incr_hot(HotCounter::RpcSent);
        let msg = Message::Request {
            rpc_id,
            from: self.nodes[from.index()].contact,
            kind,
        };
        self.send_message(to.addr, msg);
    }

    fn send_message(&mut self, to: NodeAddr, msg: Message) {
        let now = self.now();
        let dt = self.transport.delivery_time(&mut self.transport_rng, now);
        match dt {
            Some(at) => {
                self.queue.schedule_at(at, SimEvent::Deliver { to, msg });
                self.counters.incr_hot(HotCounter::MsgSent);
            }
            None => {
                self.counters.incr_hot(HotCounter::MsgLost);
                self.reclaim_message(msg);
            }
        }
    }

    /// Recovers the pooled contact buffer riding inside a dropped message
    /// (lost in transit, or delivered to a dead node).
    fn reclaim_message(&mut self, msg: Message) {
        if let Message::Response { body, .. } = msg {
            self.reclaim_body(body);
        }
    }

    /// Recovers the pooled contact buffer inside a response body that will
    /// not be consumed by a lookup.
    fn reclaim_body(&mut self, body: ResponseBody) {
        match body {
            ResponseBody::Nodes(nodes) | ResponseBody::Value { nodes, .. } => {
                self.scratch.recycle_contacts(nodes);
            }
            _ => {}
        }
    }

    fn dispatch(&mut self, event: SimEvent) {
        match event {
            SimEvent::Deliver { to, msg } => self.on_deliver(to, msg),
            SimEvent::RpcTimeout { rpc_id } => self.on_timeout(rpc_id),
            SimEvent::RefreshTick { node } => self.on_refresh(node),
            SimEvent::Compromise { node } => {
                self.compromise_node(node);
            }
            SimEvent::DefenseTick { node } => self.on_defense_tick(node),
        }
    }

    fn on_deliver(&mut self, to: NodeAddr, msg: Message) {
        if !self.nodes[to.index()].alive {
            self.counters.incr_hot(HotCounter::MsgToDead);
            self.reclaim_message(msg);
            return;
        }
        match msg {
            Message::Request { rpc_id, from, kind } => {
                // "The nodes in Kademlia attempt to add each other to
                // their respective routing tables": requests advertise
                // the requester.
                self.offer_contact(to, from);
                let mut buf = self.scratch.take_contacts();
                let (response, responder) = {
                    let node = &mut self.nodes[to.index()];
                    (
                        node.handle_request_with(&kind, self.config.k, &mut buf),
                        node.contact,
                    )
                };
                // If the response body took the buffer, `buf` is now empty
                // (capacity travels inside the message and comes back on
                // the consumption side); otherwise it returns to the pool.
                self.scratch.recycle_contacts(buf);
                self.counters.incr_hot(HotCounter::RequestHandled);
                self.send_message(
                    from.addr,
                    Message::Response {
                        rpc_id,
                        from: responder,
                        body: response,
                    },
                );
            }
            Message::Response { rpc_id, from, body } => {
                let Some(pending) = self.pending.remove(rpc_id) else {
                    // The timeout already declared this RPC failed.
                    self.counters.incr_hot(HotCounter::LateResponse);
                    self.reclaim_body(body);
                    return;
                };
                self.queue.cancel(pending.timeout_event);
                debug_assert_eq!(pending.requester, to, "response routed to requester");
                let now = self.now();
                self.offer_contact(to, from);
                self.nodes[to.index()].routing.record_success(&from.id, now);
                self.counters.incr_hot(HotCounter::ResponseReceived);
                if let Some(lookup_id) = pending.lookup {
                    if self.traces_on {
                        self.close_trace_span(&pending, lookup_id, SpanOutcome::Responded);
                        self.trace.cause = Some((rpc_id, lookup_id));
                    }
                    let (mut contacts, value_found) = match body {
                        ResponseBody::Nodes(nodes) => (nodes, false),
                        ResponseBody::Value { found, nodes } => (nodes, found),
                        _ => (Vec::new(), false),
                    };
                    // Disjoint-path members only merge candidates no
                    // sibling path has claimed (vertex-disjointness).
                    if let Some(gid) = self.disjoint.get(&lookup_id) {
                        if let Some(group) = self.groups.get_mut(gid) {
                            contacts.retain(|c| group.claimed.insert(c.id));
                        }
                    }
                    if let Some(state) = self.nodes[to.index()].lookups.get_mut(lookup_id) {
                        state.on_response(&from.id, &contacts);
                        if value_found {
                            self.counters.incr_hot(HotCounter::ValueHit);
                            state.mark_value_found();
                        }
                    }
                    self.scratch.recycle_contacts(contacts);
                    self.drive_lookup(to, lookup_id);
                    self.trace.cause = None;
                } else {
                    self.reclaim_body(body);
                }
            }
        }
    }

    fn on_timeout(&mut self, rpc_id: RpcId) {
        let Some(pending) = self.pending.remove(rpc_id) else {
            return; // response arrived first
        };
        self.counters.incr_hot(HotCounter::RpcTimeout);
        let requester = pending.requester;
        if !self.nodes[requester.index()].alive {
            return;
        }
        let evicted = self.nodes[requester.index()]
            .routing
            .record_failure(&pending.to.id);
        if evicted {
            self.counters.incr("contact_evicted");
            if let Some(sink) = self.sink.0.as_mut() {
                sink.on_defense(DefenseAction::Eviction);
            }
            // Self-healing: the policy may turn the loss into a repair
            // lookup toward the lost id's region, pulling replacement
            // contacts from surviving neighbors' closest sets.
            let repair = {
                let own = self.nodes[requester.index()].id();
                self.defense
                    .0
                    .as_mut()
                    .and_then(|p| p.repair_target(&own, &pending.to))
            };
            if let Some(target) = repair {
                self.counters.incr("defense_repair");
                if let Some(sink) = self.sink.0.as_mut() {
                    sink.on_defense(DefenseAction::Repair);
                }
                self.start_lookup_internal(requester, target, LookupPurpose::Repair);
            }
        }
        if let Some(lookup_id) = pending.lookup {
            if self.traces_on {
                self.close_trace_span(&pending, lookup_id, SpanOutcome::TimedOut);
                self.trace.cause = Some((rpc_id, lookup_id));
            }
            if let Some(state) = self.nodes[requester.index()].lookups.get_mut(lookup_id) {
                state.on_failure(&pending.to.id);
            }
            self.drive_lookup(requester, lookup_id);
            self.trace.cause = None;
        }
    }

    /// Closes an RPC span: stamps the completion instant, the outcome and
    /// the queried node's compromise flag. A no-op when the RPC recorded
    /// no span or the owning lookup's buffer is gone (the lookup
    /// finalized while this RPC was still in flight).
    fn close_trace_span(
        &mut self,
        pending: &PendingRpc,
        lookup_id: LookupId,
        outcome: SpanOutcome,
    ) {
        if pending.trace_slot == NO_TRACE_SLOT {
            return;
        }
        let compromised = self.is_compromised(pending.to.addr);
        let now = self.queue.now().as_millis();
        if let Some(buf) = self.trace.buffers.get_mut(&lookup_id) {
            if let Some(span) = buf.spans.get_mut(pending.trace_slot) {
                span.completed_ms = now;
                span.outcome = outcome;
                span.to_compromised = compromised;
            }
        }
    }

    fn on_refresh(&mut self, addr: NodeAddr) {
        if !self.nodes[addr.index()].alive {
            return;
        }
        self.counters.incr("refresh_tick");
        let bits = self.config.bits as usize;
        let first_bucket = match self.config.refresh_policy {
            RefreshPolicy::AllBuckets => 0,
            RefreshPolicy::OccupiedWithMargin(margin) => {
                let node = &self.nodes[addr.index()];
                let lowest_occupied = (0..bits)
                    .find(|&i| !node.routing.bucket(i).is_empty())
                    .unwrap_or(bits.saturating_sub(1));
                lowest_occupied.saturating_sub(margin)
            }
        };
        for i in first_bucket..bits {
            let target = self.nodes[addr.index()]
                .routing
                .random_id_in_bucket(&mut self.refresh_rng, i);
            self.counters.incr("refresh_lookup");
            self.start_lookup_internal(addr, target, LookupPurpose::Refresh);
        }
        self.queue.schedule_after(
            self.config.refresh_interval,
            SimEvent::RefreshTick { node: addr },
        );
    }
}

/// Assembles a [`TraceTree`] from a finished lookup's buffer: stragglers
/// still in flight get their open span capped at the lookup's completion
/// instant (they never sit on the critical path).
fn build_trace_tree(
    record: LookupRecord,
    queue_wait_ms: u64,
    mut spans: Vec<RpcSpan>,
    final_rpc: Option<RpcId>,
) -> TraceTree {
    for span in &mut spans {
        if span.outcome == SpanOutcome::Inflight {
            span.completed_ms = record.completed_ms;
        }
    }
    TraceTree {
        record,
        queue_wait_ms,
        spans,
        final_rpc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dessim::latency::LatencyModel;
    use dessim::loss::LossModel;
    use dessim::time::SimDuration;

    fn test_config(k: usize) -> KademliaConfig {
        KademliaConfig::builder()
            .bits(32)
            .k(k)
            .staleness_limit(1)
            .build()
            .expect("valid")
    }

    fn lossless() -> Transport {
        Transport::lossless(LatencyModel::Constant(SimDuration::from_millis(10)))
    }

    /// Builds a network of `n` joined nodes, each bootstrapping off a
    /// random earlier node, and lets it settle.
    fn build_network(n: usize, k: usize, seed: u64) -> SimNetwork {
        let mut net = SimNetwork::new(test_config(k), lossless(), seed);
        let mut prev: Option<NodeAddr> = None;
        for i in 0..n {
            let addr = net.spawn_node();
            net.join(addr, prev);
            prev = Some(addr);
            net.run_until(SimTime::from_secs((i as u64 + 1) * 10));
        }
        net.run_until(SimTime::from_minutes(30));
        net
    }

    #[test]
    fn two_nodes_learn_each_other() {
        let mut net = SimNetwork::new(test_config(4), lossless(), 1);
        let a = net.spawn_node();
        net.join(a, None);
        let b = net.spawn_node();
        net.join(b, Some(a));
        net.run_until(SimTime::from_secs(10));
        let (ida, idb) = (net.node(a).id(), net.node(b).id());
        assert!(net.node(b).routing.contains(&ida), "b bootstrapped off a");
        assert!(
            net.node(a).routing.contains(&idb),
            "a learned b from its lookup"
        );
    }

    #[test]
    fn network_becomes_mutually_known() {
        let net = build_network(12, 8, 2);
        // Every node should know a decent number of others.
        for addr in net.alive_addrs() {
            assert!(
                net.node(addr).routing.contact_count() >= 4,
                "node {addr} knows only {}",
                net.node(addr).routing.contact_count()
            );
        }
    }

    #[test]
    fn snapshot_edges_reference_alive_nodes() {
        let mut net = build_network(10, 4, 3);
        let victim = net.alive_addrs()[3];
        net.remove_node(victim);
        let snap = net.snapshot();
        assert_eq!(snap.node_count(), 9);
        for &(u, v) in snap.edges() {
            assert!(u != v);
            assert!((u as usize) < 9 && (v as usize) < 9);
        }
    }

    #[test]
    fn removed_node_stops_answering_and_gets_evicted() {
        let mut net = build_network(8, 4, 4);
        let victim = net.alive_addrs()[0];
        let victim_id = net.node(victim).id();
        net.remove_node(victim);
        // Someone still knows the victim.
        let knowers: Vec<NodeAddr> = net
            .alive_addrs()
            .into_iter()
            .filter(|&a| net.node(a).routing.contains(&victim_id))
            .collect();
        assert!(!knowers.is_empty(), "victim should still be referenced");
        // Pinging the victim times out and (s=1) evicts it.
        let knower = knowers[0];
        net.send_request(
            knower,
            Contact::new(victim_id, victim),
            RequestKind::Ping,
            None,
        );
        net.run_until(net.now() + SimDuration::from_secs(5));
        assert!(
            !net.node(knower).routing.contains(&victim_id),
            "stale contact evicted after failed ping"
        );
        assert!(net.counters().get("contact_evicted") >= 1);
    }

    #[test]
    fn store_disseminates_to_k_closest() {
        let mut net = build_network(10, 4, 5);
        let origin = net.alive_addrs()[0];
        let key = NodeId::from_u64(0x1234_5678, 32);
        net.start_store(origin, key);
        net.run_until(net.now() + SimDuration::from_secs(30));
        let holders = net
            .alive_addrs()
            .into_iter()
            .filter(|&a| net.node(a).storage.contains(&key))
            .count();
        assert!(
            holders >= 2,
            "key should be stored on several nodes, got {holders}"
        );
        assert!(holders <= 4, "no more than k holders, got {holders}");
    }

    #[test]
    fn lookups_finish() {
        let mut net = build_network(10, 4, 6);
        let origin = net.alive_addrs()[1];
        let started = net.counters().get("lookup_started");
        net.start_lookup(origin, NodeId::from_u64(99, 32));
        net.run_until(net.now() + SimDuration::from_secs(30));
        assert!(net.counters().get("lookup_started") == started + 1);
        assert!(
            net.node(origin).lookups.is_empty(),
            "lookup state cleaned up"
        );
    }

    #[test]
    fn dead_nodes_cannot_start_operations() {
        let mut net = build_network(6, 4, 7);
        let victim = net.alive_addrs()[0];
        net.remove_node(victim);
        assert!(net.start_lookup(victim, NodeId::from_u64(1, 32)).is_none());
        assert!(net.start_store(victim, NodeId::from_u64(1, 32)).is_none());
        assert!(!net.remove_node(victim), "double removal reports false");
    }

    #[test]
    fn compromised_nodes_answer_but_vanish_from_snapshots() {
        let mut net = build_network(10, 4, 21);
        let victim = net.alive_addrs()[2];
        let victim_id = net.node(victim).id();
        assert!(net.compromise_node(victim));
        assert!(!net.compromise_node(victim), "double compromise is a no-op");
        assert!(net.is_compromised(victim));
        assert_eq!(net.alive_count(), 10, "still alive on the wire");
        assert_eq!(net.compromised_count(), 1);
        assert_eq!(net.honest_count(), 9);
        assert_eq!(net.honest_addrs().len(), 9);
        // Excluded from κ accounting…
        let snap = net.snapshot();
        assert_eq!(snap.node_count(), 9);
        // …but unlike a departed node it keeps answering: pinging it
        // succeeds, so it is never evicted.
        let knowers: Vec<NodeAddr> = net
            .alive_addrs()
            .into_iter()
            .filter(|&a| a != victim && net.node(a).routing.contains(&victim_id))
            .collect();
        assert!(!knowers.is_empty());
        let knower = knowers[0];
        net.send_request(
            knower,
            Contact::new(victim_id, victim),
            RequestKind::Ping,
            None,
        );
        net.run_until(net.now() + SimDuration::from_secs(5));
        assert!(
            net.node(knower).routing.contains(&victim_id),
            "compromised node answered the ping and stays in the table"
        );
        assert!(net.counters().get("node_compromised") == 1);
    }

    #[test]
    fn scheduled_compromise_fires_through_the_event_queue() {
        let mut net = build_network(8, 4, 22);
        let victim = net.alive_addrs()[1];
        let at = net.now() + SimDuration::from_secs(90);
        net.schedule_compromise(at, victim);
        assert!(!net.is_compromised(victim), "not yet fired");
        net.run_until(at + SimDuration::from_secs(1));
        assert!(net.is_compromised(victim));
        assert_eq!(net.counters().get("compromise_scheduled"), 1);
        assert_eq!(net.counters().get("node_compromised"), 1);
    }

    #[test]
    fn churned_compromised_node_leaves_both_counts() {
        let mut net = build_network(6, 4, 23);
        let victim = net.alive_addrs()[0];
        net.compromise_node(victim);
        assert_eq!(net.compromised_count(), 1);
        assert!(net.remove_node(victim), "compromised nodes can still churn");
        assert_eq!(net.alive_count(), 5);
        assert_eq!(net.compromised_count(), 0);
        assert_eq!(net.honest_count(), 5);
        assert!(
            !net.is_compromised(victim),
            "gone nodes are not compromised"
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let a = build_network(15, 4, 42);
        let b = build_network(15, 4, 42);
        let snap_a = a.snapshot();
        let snap_b = b.snapshot();
        assert_eq!(snap_a.edges(), snap_b.edges());
        assert_eq!(a.counters().get("msg_sent"), b.counters().get("msg_sent"));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = build_network(15, 4, 1);
        let b = build_network(15, 4, 2);
        // Ids differ, so snapshots almost surely differ.
        assert_ne!(a.snapshot().ids(), b.snapshot().ids());
    }

    #[test]
    fn message_loss_is_counted() {
        let config = test_config(4);
        let transport = Transport::new(
            LatencyModel::Constant(SimDuration::from_millis(10)),
            LossModel::Bernoulli(0.5),
        );
        let mut net = SimNetwork::new(config, transport, 8);
        let mut prev = None;
        for _ in 0..10 {
            let addr = net.spawn_node();
            net.join(addr, prev);
            prev = Some(addr);
            net.run_until(net.now() + SimDuration::from_secs(10));
        }
        net.run_until(SimTime::from_minutes(10));
        assert!(net.counters().get("msg_lost") > 0, "loss should occur");
        assert!(
            net.counters().get("rpc_timeout") > 0,
            "loss causes timeouts"
        );
    }

    #[test]
    fn telemetry_records_traffic_lookups() {
        use kad_telemetry::{LookupOutcome, TracePurpose, VecSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut net = build_network(12, 4, 33);
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        let origin = net.alive_addrs()[0];
        let target = NodeId::from_u64(0x77, 32);
        let started_at = net.now();
        net.start_lookup(origin, target);
        net.run_until(net.now() + SimDuration::from_secs(30));
        let records = sink.borrow();
        let r = records
            .records
            .iter()
            .find(|r| r.purpose == TracePurpose::Locate)
            .expect("traffic lookup recorded");
        assert_eq!(r.target, *target.as_bytes());
        assert_eq!(r.outcome, LookupOutcome::Converged, "k=4 out of 11 peers");
        assert!(r.hops >= 1, "at least the seed hop");
        assert!(r.responded >= 4);
        assert!(r.messages >= r.responded, "every response cost a query");
        assert_eq!(r.started_ms, started_at.as_millis());
        assert!(r.completed_ms > r.started_ms, "lookups take simulated time");
    }

    #[test]
    fn maintenance_lookups_carry_their_own_purposes() {
        use kad_telemetry::{TracePurpose, VecSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut net = SimNetwork::new(test_config(4), lossless(), 34);
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        let a = net.spawn_node();
        net.join(a, None);
        let b = net.spawn_node();
        net.join(b, Some(a));
        // Past one refresh interval: bootstrap and refresh lookups ran.
        net.run_until(SimTime::from_minutes(70));
        let records = sink.borrow();
        let purposes: Vec<TracePurpose> = records.records.iter().map(|r| r.purpose).collect();
        assert!(purposes.contains(&TracePurpose::Bootstrap));
        assert!(purposes.contains(&TracePurpose::Refresh));
        assert!(!purposes.contains(&TracePurpose::Locate));
    }

    #[test]
    fn without_a_sink_no_start_times_are_tracked() {
        let mut net = build_network(10, 4, 35);
        let origin = net.alive_addrs()[0];
        net.start_lookup(origin, NodeId::from_u64(5, 32));
        assert!(
            net.lookup_started.is_empty(),
            "no sink, no per-lookup tracking overhead"
        );
        net.run_until(net.now() + SimDuration::from_secs(30));
        assert!(net.lookup_started.is_empty());
    }

    #[test]
    fn flat_sinks_allocate_no_span_buffers() {
        use kad_telemetry::NoopSink;

        let mut net = build_network(10, 4, 35);
        net.set_telemetry_sink(Box::new(NoopSink));
        assert!(!net.traces_on, "NoopSink keeps the default wants_traces");
        let origin = net.alive_addrs()[0];
        net.start_lookup(origin, NodeId::from_u64(5, 32));
        assert!(
            net.trace.buffers.is_empty(),
            "a flat-record sink must not pay for span recording"
        );
        net.run_until(net.now() + SimDuration::from_secs(30));
        assert!(net.trace.buffers.is_empty());
    }

    /// Every tree emitted under loss (timeouts), compromise (flagged
    /// spans) and plain traffic must conserve: critical-path rtt +
    /// timeout + queue time equals the end-to-end latency exactly.
    #[test]
    fn trace_trees_conserve_latency_attribution() {
        use kad_telemetry::{SpanOutcome, VecSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let transport = Transport::new(
            LatencyModel::Uniform {
                min: SimDuration::from_millis(20),
                max: SimDuration::from_millis(80),
            },
            LossModel::Bernoulli(0.2),
        );
        let mut net = SimNetwork::new(test_config(4), transport, 91);
        let mut prev: Option<NodeAddr> = None;
        for i in 0..14 {
            let addr = net.spawn_node();
            net.join(addr, prev);
            prev = Some(addr);
            net.run_until(SimTime::from_secs((i as u64 + 1) * 10));
        }
        net.run_until(SimTime::from_minutes(20));
        let key = NodeId::from_u64(0xF00D, 32);
        net.start_store(net.alive_addrs()[0], key);
        net.run_until(net.now() + SimDuration::from_secs(60));

        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        assert!(net.traces_on, "VecSink wants traces");
        // A compromised node near the key forces flagged spans onto some
        // critical paths.
        let victim = *net.alive_addrs().last().expect("nodes alive");
        net.compromise_node(victim);
        for i in 0..6 {
            let origin = net.alive_addrs()[i];
            net.start_lookup(origin, NodeId::from_u64(0x1000 + i as u64, 32));
            net.start_find_value(origin, key);
        }
        net.run_until(net.now() + SimDuration::from_minutes(5));

        let traces = sink.borrow();
        assert!(
            traces.traces.len() >= traces.records.len(),
            "every record has a tree (refreshes included): {} trees, {} records",
            traces.traces.len(),
            traces.records.len()
        );
        let mut timeouts = 0;
        for tree in &traces.traces {
            assert!(
                tree.conserves(),
                "attribution must sum to latency: {:?} vs end-to-end {}",
                tree.critical_path().attribution,
                tree.end_to_end_ms()
            );
            let cp = tree.critical_path();
            timeouts += cp.attribution.timeout_ms;
            for pair in cp.rpc_ids.windows(2) {
                let parent = tree.spans.iter().find(|s| s.rpc_id == pair[0]).unwrap();
                let child = tree.spans.iter().find(|s| s.rpc_id == pair[1]).unwrap();
                assert_eq!(
                    child.sent_ms, parent.completed_ms,
                    "a triggered RPC departs the instant its cause completes"
                );
                assert_ne!(parent.outcome, SpanOutcome::Inflight);
            }
        }
        assert!(timeouts > 0, "20% loss must put timeouts on some path");
    }

    #[test]
    fn queue_wait_rides_the_trace_and_its_critical_path() {
        use kad_telemetry::VecSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut net = build_network(12, 4, 92);
        let key = NodeId::from_u64(0xCAFE, 32);
        net.start_store(net.alive_addrs()[0], key);
        net.run_until(net.now() + SimDuration::from_secs(30));
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        let origin = net.alive_addrs()[3];
        net.start_find_value_queued(origin, key, 750);
        net.run_until(net.now() + SimDuration::from_secs(60));
        let traces = sink.borrow();
        let tree = traces
            .traces
            .iter()
            .find(|t| t.record.purpose == TracePurpose::Retrieve)
            .expect("retrieval traced");
        assert_eq!(tree.queue_wait_ms, 750);
        assert_eq!(
            tree.critical_path().attribution.queue_ms,
            750,
            "queue wait is prepended to the critical path"
        );
        assert!(tree.conserves());
        assert_eq!(tree.end_to_end_ms(), 750 + tree.record.latency_ms());
    }

    #[test]
    fn disjoint_group_trace_merges_member_paths() {
        use kad_telemetry::VecSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut net = build_network(14, 4, 93);
        let key = NodeId::from_u64(0xABCD, 32);
        net.start_store(net.alive_addrs()[0], key);
        net.run_until(net.now() + SimDuration::from_secs(30));
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        let retriever = net.alive_addrs()[7];
        net.start_find_value_disjoint(retriever, key, 3);
        net.run_until(net.now() + SimDuration::from_secs(60));
        let traces = sink.borrow();
        assert_eq!(traces.traces.len(), 1, "one tree per group");
        let tree = &traces.traces[0];
        assert_eq!(tree.record.purpose, TracePurpose::RetrieveDisjoint);
        assert_eq!(
            tree.spans.len() as u32,
            tree.record.messages,
            "the group tree carries every member path's spans"
        );
        assert!(tree.conserves(), "group attribution conserves too");
        assert!(
            !tree.critical_path().rpc_ids.is_empty(),
            "the finalizing member's chain is the group's critical path"
        );
        assert!(
            net.trace.buffers.is_empty(),
            "member buffers are folded into the group and freed"
        );
    }

    #[test]
    fn find_value_round_trips_through_the_overlay() {
        let mut net = build_network(12, 4, 36);
        let origin = net.alive_addrs()[0];
        let key = NodeId::from_u64(0xBEEF, 32);
        net.start_store(origin, key);
        net.run_until(net.now() + SimDuration::from_secs(30));
        let retriever = net.alive_addrs()[5];
        net.start_find_value(retriever, key);
        net.run_until(net.now() + SimDuration::from_secs(30));
        assert!(net.counters().get("retrieve_started") == 1);
        assert!(
            net.counters().get("value_hit") >= 1,
            "a holder served the value"
        );
    }

    /// Test policy: rejects every new insert.
    struct RejectAll;

    impl crate::defense::DefensePolicy for RejectAll {
        fn label(&self) -> &'static str {
            "reject-all"
        }

        fn decide_insert(
            &mut self,
            _own: &NodeId,
            _bucket: &crate::bucket::KBucket,
            _index: usize,
            _candidate: &Contact,
        ) -> crate::defense::InsertDecision {
            crate::defense::InsertDecision::Reject
        }
    }

    /// Test policy: probes every stored contact each tick and repairs
    /// every eviction with a lookup toward the lost id.
    struct ProbeAndHeal;

    impl crate::defense::DefensePolicy for ProbeAndHeal {
        fn label(&self) -> &'static str {
            "probe-and-heal"
        }

        fn probe_interval(&self) -> Option<SimDuration> {
            Some(SimDuration::from_secs(30))
        }

        fn probe_targets(
            &mut self,
            table: &crate::routing::RoutingTable,
            _now: SimTime,
        ) -> Vec<Contact> {
            table.contacts().copied().collect()
        }

        fn repair_target(&mut self, _own: &NodeId, lost: &Contact) -> Option<NodeId> {
            Some(lost.id)
        }
    }

    #[test]
    fn reject_all_policy_blocks_every_insert() {
        let mut net = SimNetwork::new(test_config(4), lossless(), 51);
        net.set_defense_policy(Box::new(RejectAll));
        assert_eq!(net.defense_label(), Some("reject-all"));
        let a = net.spawn_node();
        net.join(a, None);
        let b = net.spawn_node();
        net.join(b, Some(a));
        net.run_until(SimTime::from_minutes(5));
        assert_eq!(
            net.node(b).routing.contact_count(),
            0,
            "even the bootstrap contact was vetted and rejected"
        );
        assert!(net.counters().get("defense_diversity_reject") >= 1);
    }

    #[test]
    fn probe_ticks_evict_departed_contacts_without_traffic() {
        use kad_telemetry::{DefenseAction, VecSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut net = build_network(10, 4, 52);
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        net.set_defense_policy(Box::new(ProbeAndHeal));
        let victim = net.alive_addrs()[2];
        let victim_id = net.node(victim).id();
        net.remove_node(victim);
        // No lookups, no stores: only the defense ticks talk. One probe
        // round (30 s) plus the RPC timeout is enough at s = 1.
        net.run_until(net.now() + SimDuration::from_secs(120));
        assert!(net.counters().get("defense_tick") >= 1);
        assert!(net.counters().get("defense_probe") >= 1);
        for addr in net.alive_addrs() {
            assert!(
                !net.node(addr).routing.contains(&victim_id),
                "{addr} still references the departed victim"
            );
        }
        let events = sink.borrow();
        assert!(events.defense.contains(&DefenseAction::Probe));
        assert!(events.defense.contains(&DefenseAction::Eviction));
        assert!(
            events.defense.contains(&DefenseAction::Repair),
            "evictions triggered repairs: {:?}",
            events.defense
        );
        assert!(net.counters().get("defense_repair") >= 1);
    }

    #[test]
    fn repair_lookups_carry_their_own_trace_purpose() {
        use kad_telemetry::{TracePurpose, VecSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut net = build_network(8, 4, 53);
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        net.set_defense_policy(Box::new(ProbeAndHeal));
        let victim = net.alive_addrs()[1];
        net.remove_node(victim);
        net.run_until(net.now() + SimDuration::from_secs(120));
        let records = sink.borrow();
        assert!(
            records
                .records
                .iter()
                .any(|r| r.purpose == TracePurpose::Repair),
            "repair lookup emitted a Repair-purpose record"
        );
    }

    #[test]
    fn disjoint_retrieval_emits_one_group_record() {
        use kad_telemetry::{LookupOutcome, TracePurpose, VecSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut net = build_network(14, 4, 54);
        let origin = net.alive_addrs()[0];
        let key = NodeId::from_u64(0xABCD, 32);
        net.start_store(origin, key);
        net.run_until(net.now() + SimDuration::from_secs(30));
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        let retriever = net.alive_addrs()[7];
        let id = net.start_find_value_disjoint(retriever, key, 3);
        assert!(id.is_some());
        net.run_until(net.now() + SimDuration::from_secs(60));
        assert_eq!(net.counters().get("retrieve_disjoint_started"), 1);
        let records = sink.borrow();
        let groups: Vec<_> = records
            .records
            .iter()
            .filter(|r| r.purpose == TracePurpose::RetrieveDisjoint)
            .collect();
        assert_eq!(groups.len(), 1, "exactly one synthesized group record");
        assert_eq!(groups[0].outcome, LookupOutcome::ValueFound);
        assert!(groups[0].hops >= 1);
        assert!(groups[0].messages >= 1);
        assert!(
            !records
                .records
                .iter()
                .any(|r| r.purpose == TracePurpose::Retrieve),
            "sub-lookups stay silent"
        );
        assert!(net.node(retriever).lookups.is_empty(), "state cleaned up");
    }

    #[test]
    fn disjoint_retrieval_beats_a_compromised_primary_path() {
        use kad_telemetry::{LookupOutcome, TracePurpose, VecSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        // d = 1 routes every query through the closest seeds; d = 3 has
        // two more first-hop sets. Degenerate check: with no seeds at all
        // the group still terminates as ValueMissing.
        let config = test_config(4);
        let mut net = SimNetwork::new(config, lossless(), 55);
        let a = net.spawn_node();
        net.join(a, None);
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        let key = NodeId::from_u64(0x99, 32);
        net.start_find_value_disjoint(a, key, 3);
        net.run_until(net.now() + SimDuration::from_secs(60));
        let records = sink.borrow();
        let group = records
            .records
            .iter()
            .find(|r| r.purpose == TracePurpose::RetrieveDisjoint)
            .expect("group record emitted even without seeds");
        assert_eq!(group.outcome, LookupOutcome::ValueMissing);
    }

    #[test]
    fn disjoint_retrieval_degrades_to_plain_find_value_at_d1() {
        let mut net = build_network(10, 4, 56);
        let origin = net.alive_addrs()[0];
        let key = NodeId::from_u64(0x42, 32);
        net.start_store(origin, key);
        net.run_until(net.now() + SimDuration::from_secs(30));
        let retriever = net.alive_addrs()[3];
        assert!(net.start_find_value_disjoint(retriever, key, 1).is_some());
        assert_eq!(net.counters().get("retrieve_started"), 1);
        assert_eq!(net.counters().get("retrieve_disjoint_started"), 0);
        // Dead origins cannot start disjoint retrievals either.
        net.remove_node(retriever);
        assert!(net.start_find_value_disjoint(retriever, key, 3).is_none());
    }

    #[test]
    fn refresh_ticks_fire_periodically() {
        let mut net = build_network(5, 4, 9);
        net.run_until(SimTime::from_minutes(185));
        // 5 nodes, refresh every 60 min, joined within the first 30 min:
        // by minute 185 every node has refreshed at least twice.
        assert!(
            net.counters().get("refresh_tick") >= 10,
            "got {}",
            net.counters().get("refresh_tick")
        );
    }
}
