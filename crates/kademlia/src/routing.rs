//! The per-node routing table: `b` k-buckets indexed by XOR distance.

use crate::bucket::{InsertOutcome, KBucket};
use crate::config::KademliaConfig;
use crate::contact::Contact;
use crate::id::NodeId;
use dessim::time::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Kademlia routing table.
///
/// Bucket `i` stores contacts at XOR distance `[2^i, 2^(i+1))` from the
/// owner (paper, Section 4.1). The table never stores the owner itself.
///
/// # Example
///
/// ```
/// use dessim::time::SimTime;
/// use kademlia::config::KademliaConfig;
/// use kademlia::contact::{Contact, NodeAddr};
/// use kademlia::id::NodeId;
/// use kademlia::routing::RoutingTable;
///
/// let config = KademliaConfig::builder().bits(16).k(2).build()?;
/// let mut table = RoutingTable::new(NodeId::from_u64(0, 16), &config);
/// table.offer(Contact::new(NodeId::from_u64(5, 16), NodeAddr(1)), SimTime::ZERO);
/// table.offer(Contact::new(NodeId::from_u64(9, 16), NodeAddr(2)), SimTime::ZERO);
/// let closest = table.closest(&NodeId::from_u64(4, 16), 1);
/// assert_eq!(closest[0].addr, NodeAddr(1));
/// # Ok::<(), kademlia::config::ConfigError>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutingTable {
    own_id: NodeId,
    buckets: Vec<KBucket>,
    staleness_limit: u32,
}

impl RoutingTable {
    /// Creates an empty table for the node `own_id`.
    ///
    /// # Panics
    ///
    /// Panics if `own_id` does not fit into the configured bit-length.
    pub fn new(own_id: NodeId, config: &KademliaConfig) -> Self {
        assert!(own_id.fits(config.bits), "own id exceeds configured bits");
        RoutingTable {
            own_id,
            buckets: (0..config.bits).map(|_| KBucket::new(config.k)).collect(),
            staleness_limit: config.staleness_limit,
        }
    }

    /// The owner's identifier.
    pub fn own_id(&self) -> NodeId {
        self.own_id
    }

    /// Number of buckets (`b`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket index `id` falls into, or `None` for the owner's own id.
    pub fn bucket_index(&self, id: &NodeId) -> Option<usize> {
        self.own_id.bucket_index_of(id)
    }

    /// Offers a contact observed through successful communication; see
    /// [`KBucket::offer`] for the bucket-full policy.
    ///
    /// A node never stores itself: offering the owner's own id is rejected
    /// and reported as [`InsertOutcome::Full`].
    pub fn offer(&mut self, contact: Contact, now: SimTime) -> InsertOutcome {
        match self.bucket_index(&contact.id) {
            Some(i) => self.buckets[i].offer(contact, now),
            None => InsertOutcome::Full,
        }
    }

    /// Records a successful round trip with `id`.
    pub fn record_success(&mut self, id: &NodeId, now: SimTime) {
        if let Some(i) = self.bucket_index(id) {
            self.buckets[i].record_success(id, now);
        }
    }

    /// Records a failed communication with `id`; returns `true` if the
    /// staleness limit evicted the contact.
    pub fn record_failure(&mut self, id: &NodeId) -> bool {
        match self.bucket_index(id) {
            Some(i) => self.buckets[i].record_failure(id, self.staleness_limit),
            None => false,
        }
    }

    /// Removes `id` outright (used when a node is told a contact is gone).
    pub fn remove(&mut self, id: &NodeId) -> bool {
        match self.bucket_index(id) {
            Some(i) => self.buckets[i].remove(id),
            None => false,
        }
    }

    /// Whether `id` is currently stored.
    pub fn contains(&self, id: &NodeId) -> bool {
        self.bucket_index(id)
            .map(|i| self.buckets[i].contains(id))
            .unwrap_or(false)
    }

    /// The `count` stored contacts closest to `target` by XOR distance,
    /// closest first. This is the answer to a FIND_NODE request.
    ///
    /// Hot path for the simulator (one call per FIND_NODE), so it selects
    /// the top `count` before sorting instead of sorting the whole table.
    pub fn closest(&self, target: &NodeId, count: usize) -> Vec<Contact> {
        let mut all: Vec<Contact> = self.contacts().copied().collect();
        if count < all.len() {
            all.select_nth_unstable_by_key(count, |c| c.id.distance(target));
            all.truncate(count);
        }
        all.sort_by_key(|c| c.id.distance(target));
        all
    }

    /// Iterates all stored contacts (bucket order, LRS first within each).
    pub fn contacts(&self) -> impl Iterator<Item = &Contact> {
        self.buckets.iter().flat_map(|b| b.contacts())
    }

    /// Total number of stored contacts.
    pub fn contact_count(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Access to bucket `i` (for refresh and diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `i >= bucket_count()`.
    pub fn bucket(&self, i: usize) -> &KBucket {
        &self.buckets[i]
    }

    /// Draws a random target id inside bucket `i`'s distance range — the
    /// refresh procedure's lookup target.
    pub fn random_id_in_bucket<R: Rng + ?Sized>(&self, rng: &mut R, i: usize) -> NodeId {
        self.own_id
            .random_in_bucket(rng, i, self.buckets.len() as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::NodeAddr;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn config(bits: u16, k: usize) -> KademliaConfig {
        KademliaConfig::builder()
            .bits(bits)
            .k(k)
            .build()
            .expect("valid")
    }

    fn contact(v: u64) -> Contact {
        Contact::new(NodeId::from_u64(v, 16), NodeAddr(v as u32))
    }

    #[test]
    fn contacts_land_in_correct_buckets() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 20));
        t.offer(contact(1), SimTime::ZERO); // distance 1 -> bucket 0
        t.offer(contact(2), SimTime::ZERO); // distance 2 -> bucket 1
        t.offer(contact(3), SimTime::ZERO); // distance 3 -> bucket 1
        t.offer(contact(0x8000), SimTime::ZERO); // bucket 15
        assert_eq!(t.bucket(0).len(), 1);
        assert_eq!(t.bucket(1).len(), 2);
        assert_eq!(t.bucket(15).len(), 1);
        assert_eq!(t.contact_count(), 4);
    }

    #[test]
    fn own_id_is_never_stored() {
        let mut t = RoutingTable::new(NodeId::from_u64(7, 16), &config(16, 20));
        t.offer(
            Contact::new(NodeId::from_u64(7, 16), NodeAddr(9)),
            SimTime::ZERO,
        );
        assert_eq!(t.contact_count(), 0);
        assert!(!t.contains(&NodeId::from_u64(7, 16)));
    }

    #[test]
    fn closest_orders_by_xor_distance() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 20));
        for v in [1u64, 4, 5, 200, 1023] {
            t.offer(contact(v), SimTime::ZERO);
        }
        let target = NodeId::from_u64(5, 16);
        let closest = t.closest(&target, 3);
        let ids: Vec<u64> = closest
            .iter()
            .map(|c| c.id.distance(&NodeId::ZERO).to_u64())
            .collect();
        // Distances to 5: 5->0, 4->1, 1->4, 200->205, 1023->1018.
        assert_eq!(ids, vec![5, 4, 1]);
    }

    #[test]
    fn closest_truncates_to_available() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 20));
        t.offer(contact(3), SimTime::ZERO);
        assert_eq!(t.closest(&NodeId::from_u64(1, 16), 10).len(), 1);
    }

    #[test]
    fn failure_eviction_respects_staleness_limit() {
        let cfg = KademliaConfig::builder()
            .bits(16)
            .staleness_limit(2)
            .build()
            .expect("valid");
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &cfg);
        t.offer(contact(5), SimTime::ZERO);
        let id = NodeId::from_u64(5, 16);
        assert!(!t.record_failure(&id));
        assert!(t.contains(&id));
        assert!(t.record_failure(&id));
        assert!(!t.contains(&id));
    }

    #[test]
    fn bucket_full_drops_new_contacts() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 1));
        // Both land in bucket 1 (distances 2 and 3).
        assert_eq!(t.offer(contact(2), SimTime::ZERO), InsertOutcome::Inserted);
        assert_eq!(t.offer(contact(3), SimTime::ZERO), InsertOutcome::Full);
        assert!(t.contains(&NodeId::from_u64(2, 16)));
        assert!(!t.contains(&NodeId::from_u64(3, 16)));
    }

    #[test]
    fn random_id_in_bucket_has_right_distance() {
        let t = RoutingTable::new(NodeId::from_u64(0xab, 16), &config(16, 4));
        let mut rng = SmallRng::seed_from_u64(5);
        for i in [0usize, 3, 9, 15] {
            let id = t.random_id_in_bucket(&mut rng, i);
            assert_eq!(t.bucket_index(&id), Some(i));
        }
    }

    #[test]
    fn remove_outright() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 4));
        t.offer(contact(9), SimTime::ZERO);
        assert!(t.remove(&NodeId::from_u64(9, 16)));
        assert!(!t.remove(&NodeId::from_u64(9, 16)));
        assert_eq!(t.contact_count(), 0);
    }
}
