//! The per-node routing table: `b` k-buckets indexed by XOR distance.

use crate::bucket::{InsertOutcome, KBucket};
use crate::config::KademliaConfig;
use crate::contact::Contact;
use crate::id::NodeId;
use dessim::time::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Kademlia routing table.
///
/// Bucket `i` stores contacts at XOR distance `[2^i, 2^(i+1))` from the
/// owner (paper, Section 4.1). The table never stores the owner itself.
///
/// # Example
///
/// ```
/// use dessim::time::SimTime;
/// use kademlia::config::KademliaConfig;
/// use kademlia::contact::{Contact, NodeAddr};
/// use kademlia::id::NodeId;
/// use kademlia::routing::RoutingTable;
///
/// let config = KademliaConfig::builder().bits(16).k(2).build()?;
/// let mut table = RoutingTable::new(NodeId::from_u64(0, 16), &config);
/// table.offer(Contact::new(NodeId::from_u64(5, 16), NodeAddr(1)), SimTime::ZERO);
/// table.offer(Contact::new(NodeId::from_u64(9, 16), NodeAddr(2)), SimTime::ZERO);
/// let closest = table.closest(&NodeId::from_u64(4, 16), 1);
/// assert_eq!(closest[0].addr, NodeAddr(1));
/// # Ok::<(), kademlia::config::ConfigError>(())
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutingTable {
    own_id: NodeId,
    buckets: Vec<KBucket>,
    staleness_limit: u32,
    /// Occupancy bitmap: bit `i` set iff bucket `i` is non-empty. Lets the
    /// closest-contact scan step straight between occupied buckets instead
    /// of walking up to `b` empty ones per query (converged lookups query
    /// nodes close to the target, whose target-side buckets are deep and
    /// overwhelmingly empty).
    occupied: [u64; 3],
}

impl RoutingTable {
    /// Creates an empty table for the node `own_id`.
    ///
    /// # Panics
    ///
    /// Panics if `own_id` does not fit into the configured bit-length.
    pub fn new(own_id: NodeId, config: &KademliaConfig) -> Self {
        assert!(own_id.fits(config.bits), "own id exceeds configured bits");
        RoutingTable {
            own_id,
            buckets: (0..config.bits).map(|_| KBucket::new(config.k)).collect(),
            staleness_limit: config.staleness_limit,
            occupied: [0; 3],
        }
    }

    /// Re-derives bucket `i`'s occupancy bit after a mutation.
    fn update_occupied(&mut self, i: usize) {
        if self.buckets[i].is_empty() {
            self.occupied[i >> 6] &= !(1u64 << (i & 63));
        } else {
            self.occupied[i >> 6] |= 1u64 << (i & 63);
        }
    }

    /// The smallest occupied bucket index `>= from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let mut w = from >> 6;
        if w >= self.occupied.len() {
            return None;
        }
        let mut bits = self.occupied[w] & (!0u64 << (from & 63));
        loop {
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.occupied.len() {
                return None;
            }
            bits = self.occupied[w];
        }
    }

    /// The owner's identifier.
    pub fn own_id(&self) -> NodeId {
        self.own_id
    }

    /// Number of buckets (`b`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket index `id` falls into, or `None` for the owner's own id.
    pub fn bucket_index(&self, id: &NodeId) -> Option<usize> {
        self.own_id.bucket_index_of(id)
    }

    /// Offers a contact observed through successful communication; see
    /// [`KBucket::offer`] for the bucket-full policy.
    ///
    /// A node never stores itself: offering the owner's own id is rejected
    /// and reported as [`InsertOutcome::Full`].
    pub fn offer(&mut self, contact: Contact, now: SimTime) -> InsertOutcome {
        match self.bucket_index(&contact.id) {
            Some(i) => {
                let outcome = self.buckets[i].offer(contact, now);
                self.update_occupied(i);
                outcome
            }
            None => InsertOutcome::Full,
        }
    }

    /// Records a successful round trip with `id`.
    pub fn record_success(&mut self, id: &NodeId, now: SimTime) {
        if let Some(i) = self.bucket_index(id) {
            self.buckets[i].record_success(id, now);
        }
    }

    /// Records a failed communication with `id`; returns `true` if the
    /// staleness limit evicted the contact.
    pub fn record_failure(&mut self, id: &NodeId) -> bool {
        match self.bucket_index(id) {
            Some(i) => {
                let evicted = self.buckets[i].record_failure(id, self.staleness_limit);
                if evicted {
                    self.update_occupied(i);
                }
                evicted
            }
            None => false,
        }
    }

    /// Removes `id` outright (used when a node is told a contact is gone).
    pub fn remove(&mut self, id: &NodeId) -> bool {
        match self.bucket_index(id) {
            Some(i) => {
                let removed = self.buckets[i].remove(id);
                if removed {
                    self.update_occupied(i);
                }
                removed
            }
            None => false,
        }
    }

    /// Whether `id` is currently stored.
    pub fn contains(&self, id: &NodeId) -> bool {
        self.bucket_index(id)
            .map(|i| self.buckets[i].contains(id))
            .unwrap_or(false)
    }

    /// The `count` stored contacts closest to `target` by XOR distance,
    /// closest first. This is the answer to a FIND_NODE request.
    ///
    /// Hot path for the simulator (one call per FIND_NODE), so it selects
    /// the top `count` before sorting instead of sorting the whole table.
    pub fn closest(&self, target: &NodeId, count: usize) -> Vec<Contact> {
        let mut all = Vec::new();
        self.closest_into(target, count, &mut all);
        all
    }

    /// [`RoutingTable::closest`] into a caller-provided buffer, clearing it
    /// first — the allocation-free variant the simulator's event loop uses
    /// with pooled scratch vectors. Selection and ordering are identical to
    /// [`RoutingTable::closest`].
    ///
    /// Exploits the bucket structure instead of scanning the whole table:
    /// with `t` the bucket `target` falls into, every contact in bucket `t`
    /// is at distance `< 2^t` from the target, every contact in a bucket
    /// below `t` is at distance in `[2^t, 2^(t+1))`, and every contact in a
    /// bucket `j > t` is at distance in `[2^j, 2^(j+1))`. Those bands are
    /// disjoint and ordered, so visiting bucket `t`, then all buckets below
    /// `t` together, then buckets above `t` ascending — sorting within each
    /// band — yields the globally sorted prefix and lets the scan stop as
    /// soon as `count` contacts are in hand. In a converged overlay the
    /// first band usually settles it: one bucket touched instead of the
    /// whole table.
    pub fn closest_into(&self, target: &NodeId, count: usize, out: &mut Vec<Contact>) {
        out.clear();
        if count == 0 {
            return;
        }
        match self.bucket_index(target) {
            Some(t) => {
                out.extend(self.buckets[t].contacts().copied());
                sort_by_distance(out, target);
                out.truncate(count);
                if out.len() < count {
                    // All buckets below `t` form ONE distance band, so
                    // they must be collected before ranking — but dumping
                    // the lot would grow `out` to the table size and
                    // ratchet pooled buffers' capacities forever. Pruning
                    // the sorted region to the best `need` seen so far
                    // between buckets keeps `out` bounded by
                    // `count + bucket-capacity` without changing the
                    // band's final top-`need`: XOR distances to a fixed
                    // target are pairwise distinct, so anything pruned
                    // was strictly beaten by `need` closer contacts.
                    let start = out.len();
                    let need = count - start;
                    let mut next = self.next_occupied(0);
                    while let Some(i) = next.filter(|&i| i < t) {
                        out.extend(self.buckets[i].contacts().copied());
                        if out.len() - start > need {
                            sort_by_distance(&mut out[start..], target);
                            out.truncate(start + need);
                        }
                        next = self.next_occupied(i + 1);
                    }
                    sort_by_distance(&mut out[start..], target);
                }
                let mut next = self.next_occupied(t + 1);
                while let Some(i) = next {
                    if out.len() >= count {
                        break;
                    }
                    let start = out.len();
                    out.extend(self.buckets[i].contacts().copied());
                    sort_by_distance(&mut out[start..], target);
                    out.truncate(count);
                    next = self.next_occupied(i + 1);
                }
            }
            None => {
                // Target is the owner itself: bucket order *is* distance
                // order.
                let mut next = self.next_occupied(0);
                while let Some(i) = next {
                    if out.len() >= count {
                        break;
                    }
                    let start = out.len();
                    out.extend(self.buckets[i].contacts().copied());
                    sort_by_distance(&mut out[start..], target);
                    out.truncate(count);
                    next = self.next_occupied(i + 1);
                }
            }
        }
        out.truncate(count);
    }

    /// Iterates all stored contacts (bucket order, LRS first within each).
    pub fn contacts(&self) -> impl Iterator<Item = &Contact> {
        self.buckets.iter().flat_map(|b| b.contacts())
    }

    /// Total number of stored contacts.
    pub fn contact_count(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// Access to bucket `i` (for refresh and diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `i >= bucket_count()`.
    pub fn bucket(&self, i: usize) -> &KBucket {
        &self.buckets[i]
    }

    /// Draws a random target id inside bucket `i`'s distance range — the
    /// refresh procedure's lookup target.
    pub fn random_id_in_bucket<R: Rng + ?Sized>(&self, rng: &mut R, i: usize) -> NodeId {
        self.own_id
            .random_in_bucket(rng, i, self.buckets.len() as u16)
    }
}

/// Sorts contacts ascending by XOR distance to `target`, computing each
/// distance exactly once. `sort_by_key` re-derives the 20-byte key on every
/// comparison — measurably the hottest instruction stream in the simulator —
/// so small bands are staged with cached keys on the stack. Bands larger
/// than the stage (only the merged below-`t` band can be) fall back to the
/// recomputing sort. Distance ties cannot occur (XOR injectivity), so
/// unstable sorting is deterministic.
fn sort_by_distance(band: &mut [Contact], target: &NodeId) {
    const STAGE: usize = 24;
    if band.len() <= 1 {
        return;
    }
    if band.len() <= STAGE {
        let first = (band[0].id.distance(target), band[0]);
        let mut keyed = [first; STAGE];
        for (slot, c) in keyed[1..].iter_mut().zip(&band[1..]) {
            *slot = (c.id.distance(target), *c);
        }
        let keyed = &mut keyed[..band.len()];
        keyed.sort_unstable_by_key(|k| k.0);
        for (dst, (_, c)) in band.iter_mut().zip(keyed.iter()) {
            *dst = *c;
        }
    } else {
        band.sort_by_key(|c| c.id.distance(target));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::NodeAddr;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn config(bits: u16, k: usize) -> KademliaConfig {
        KademliaConfig::builder()
            .bits(bits)
            .k(k)
            .build()
            .expect("valid")
    }

    fn contact(v: u64) -> Contact {
        Contact::new(NodeId::from_u64(v, 16), NodeAddr(v as u32))
    }

    #[test]
    fn contacts_land_in_correct_buckets() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 20));
        t.offer(contact(1), SimTime::ZERO); // distance 1 -> bucket 0
        t.offer(contact(2), SimTime::ZERO); // distance 2 -> bucket 1
        t.offer(contact(3), SimTime::ZERO); // distance 3 -> bucket 1
        t.offer(contact(0x8000), SimTime::ZERO); // bucket 15
        assert_eq!(t.bucket(0).len(), 1);
        assert_eq!(t.bucket(1).len(), 2);
        assert_eq!(t.bucket(15).len(), 1);
        assert_eq!(t.contact_count(), 4);
    }

    #[test]
    fn own_id_is_never_stored() {
        let mut t = RoutingTable::new(NodeId::from_u64(7, 16), &config(16, 20));
        t.offer(
            Contact::new(NodeId::from_u64(7, 16), NodeAddr(9)),
            SimTime::ZERO,
        );
        assert_eq!(t.contact_count(), 0);
        assert!(!t.contains(&NodeId::from_u64(7, 16)));
    }

    #[test]
    fn closest_orders_by_xor_distance() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 20));
        for v in [1u64, 4, 5, 200, 1023] {
            t.offer(contact(v), SimTime::ZERO);
        }
        let target = NodeId::from_u64(5, 16);
        let closest = t.closest(&target, 3);
        let ids: Vec<u64> = closest
            .iter()
            .map(|c| c.id.distance(&NodeId::ZERO).to_u64())
            .collect();
        // Distances to 5: 5->0, 4->1, 1->4, 200->205, 1023->1018.
        assert_eq!(ids, vec![5, 4, 1]);
    }

    #[test]
    fn closest_truncates_to_available() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 20));
        t.offer(contact(3), SimTime::ZERO);
        assert_eq!(t.closest(&NodeId::from_u64(1, 16), 10).len(), 1);
    }

    #[test]
    fn failure_eviction_respects_staleness_limit() {
        let cfg = KademliaConfig::builder()
            .bits(16)
            .staleness_limit(2)
            .build()
            .expect("valid");
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &cfg);
        t.offer(contact(5), SimTime::ZERO);
        let id = NodeId::from_u64(5, 16);
        assert!(!t.record_failure(&id));
        assert!(t.contains(&id));
        assert!(t.record_failure(&id));
        assert!(!t.contains(&id));
    }

    #[test]
    fn bucket_full_drops_new_contacts() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 1));
        // Both land in bucket 1 (distances 2 and 3).
        assert_eq!(t.offer(contact(2), SimTime::ZERO), InsertOutcome::Inserted);
        assert_eq!(t.offer(contact(3), SimTime::ZERO), InsertOutcome::Full);
        assert!(t.contains(&NodeId::from_u64(2, 16)));
        assert!(!t.contains(&NodeId::from_u64(3, 16)));
    }

    #[test]
    fn random_id_in_bucket_has_right_distance() {
        let t = RoutingTable::new(NodeId::from_u64(0xab, 16), &config(16, 4));
        let mut rng = SmallRng::seed_from_u64(5);
        for i in [0usize, 3, 9, 15] {
            let id = t.random_id_in_bucket(&mut rng, i);
            assert_eq!(t.bucket_index(&id), Some(i));
        }
    }

    #[test]
    fn banded_closest_matches_full_table_sort() {
        // The band-ordered bucket traversal must return exactly what a
        // naive sort of the entire table returns — for targets in every
        // band position, including the owner itself.
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..50 {
            let own = NodeId::random(&mut rng, 16);
            let mut t = RoutingTable::new(own, &config(16, 4));
            for _ in 0..120 {
                let id = NodeId::random(&mut rng, 16);
                t.offer(Contact::new(id, NodeAddr(0)), SimTime::ZERO);
            }
            for target in [own, NodeId::random(&mut rng, 16), NodeId::ZERO] {
                for count in [1usize, 3, 7, 20, 1000] {
                    let mut naive: Vec<Contact> = t.contacts().copied().collect();
                    naive.sort_by_key(|c| c.id.distance(&target));
                    naive.truncate(count);
                    let got = t.closest(&target, count);
                    assert_eq!(
                        got.iter().map(|c| c.id).collect::<Vec<_>>(),
                        naive.iter().map(|c| c.id).collect::<Vec<_>>(),
                        "banded traversal diverged (count {count})"
                    );
                }
            }
        }
    }

    #[test]
    fn remove_outright() {
        let mut t = RoutingTable::new(NodeId::from_u64(0, 16), &config(16, 4));
        t.offer(contact(9), SimTime::ZERO);
        assert!(t.remove(&NodeId::from_u64(9, 16)));
        assert!(!t.remove(&NodeId::from_u64(9, 16)));
        assert_eq!(t.contact_count(), 0);
    }
}
