//! The iterative lookup state machine.
//!
//! A lookup keeps a *shortlist* of candidate contacts ordered by XOR
//! distance to the target, queries up to `α` of them concurrently, merges
//! the contacts each response returns, and terminates when either `k` nodes
//! have been successfully contacted or no untried candidates remain
//! (paper, Section 4.1: "this process ends when a number of k nodes have
//! been successfully contacted, or no more progress is made in getting
//! closer to the target").
//!
//! The state machine is pure — it never performs I/O. The network driver
//! ([`crate::network::SimNetwork`]) feeds it responses/failures and sends
//! whatever [`LookupState::next_queries`] asks for, which keeps the
//! protocol logic unit-testable without a simulator.

use crate::config::KademliaConfig;
use crate::contact::Contact;
use crate::id::{Distance, NodeId};
use serde::{Deserialize, Serialize};

/// Unique id of a lookup within one simulation.
pub type LookupId = u64;

/// Why the lookup is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LookupPurpose {
    /// Locate a node / data object (the paper's "lookup procedure").
    Locate,
    /// Locate the `k` closest nodes and then store a data object on them
    /// (the paper's "dissemination procedure").
    Disseminate,
    /// Retrieve a stored data object: like `Locate`, but queried nodes
    /// that hold the key answer with the value, which ends the lookup
    /// early (FIND_VALUE semantics).
    Retrieve,
    /// Maintenance: a periodic bucket-refresh lookup. Protocol-identical
    /// to `Locate`; kept distinct so service telemetry can separate
    /// maintenance traffic from data traffic.
    Refresh,
    /// Maintenance: the self-lookup a node performs when joining.
    Bootstrap,
    /// Defense: a self-healing repair lookup launched after a neighbor
    /// was evicted, targeting the lost contact's id region so surviving
    /// neighbors' closest sets refill the hole. Protocol-identical to
    /// `Locate`; kept distinct so defense overhead is attributable.
    Repair,
}

/// Splits lookup seeds into `d` disjoint first-hop sets for a
/// disjoint-path lookup ([`crate::network::SimNetwork::start_find_value_disjoint`]).
///
/// Seeds are dealt round-robin in distance order, so every path starts
/// with a similar distance profile (path 0 gets the closest seed, path 1
/// the second-closest, …) instead of one privileged path hoarding all the
/// close contacts. Empty paths are dropped: with fewer than `d` seeds the
/// lookup degrades gracefully to as many paths as it can seed.
pub fn partition_seeds(seeds: Vec<Contact>, d: usize) -> Vec<Vec<Contact>> {
    let d = d.max(1);
    let mut paths: Vec<Vec<Contact>> = vec![Vec::new(); d.min(seeds.len().max(1))];
    for (i, seed) in seeds.into_iter().enumerate() {
        let slot = i % paths.len();
        paths[slot].push(seed);
    }
    paths.retain(|p| !p.is_empty());
    paths
}

/// State of one shortlist candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum CandidateState {
    Untried,
    InFlight,
    Responded,
    Failed,
}

#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct Candidate {
    contact: Contact,
    state: CandidateState,
    /// Hop depth: seeds from the local routing table are hop 1; a contact
    /// learned from the response of a hop-`h` node is hop `h + 1`. The hop
    /// depth of the closest responder is the lookup's hop count — the
    /// quantity the Roos-style analytic hop distribution predicts.
    hop: u32,
    /// XOR distance to the lookup target, cached at insertion so shortlist
    /// binary searches never recompute it. For a fixed target the XOR
    /// metric is injective, so `dist` doubles as an identity key: two
    /// candidates collide on `dist` iff they are the same node.
    dist: Distance,
}

/// Reusable per-lookup shortlist arena.
///
/// The simulator pools these: a finished [`LookupState`] returns its arena
/// via [`LookupState::into_scratch`] and the next lookup starts from it via
/// [`LookupState::with_scratch`], which *resets* (clears) the buffer but
/// keeps its heap capacity — the event loop never reallocates shortlists in
/// steady state.
#[derive(Clone, Debug, Default)]
pub struct LookupScratch {
    shortlist: Vec<Candidate>,
}

/// The set of a node's in-progress lookups, keyed by [`LookupId`].
///
/// Backed by an insertion-ordered `Vec` rather than a `HashMap`: a node has
/// only a handful of concurrent lookups, so linear id scans beat hashing,
/// and — the property the simulator's determinism contract relies on —
/// iteration order is *insertion order*, never hash order. Removal shifts
/// (`Vec::remove`) precisely to preserve that order.
#[derive(Clone, Debug, Default)]
pub struct LookupTable {
    entries: Vec<(LookupId, LookupState)>,
}

impl LookupTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LookupTable::default()
    }

    /// Number of lookups in progress.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no lookup is in progress.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The lookup with id `id`, if present.
    pub fn get(&self, id: LookupId) -> Option<&LookupState> {
        self.entries.iter().find(|(i, _)| *i == id).map(|(_, s)| s)
    }

    /// Mutable access to the lookup with id `id`.
    pub fn get_mut(&mut self, id: LookupId) -> Option<&mut LookupState> {
        self.entries
            .iter_mut()
            .find(|(i, _)| *i == id)
            .map(|(_, s)| s)
    }

    /// Inserts a lookup (ids are unique per simulation; inserting a
    /// duplicate id is a logic error).
    pub fn insert(&mut self, state: LookupState) {
        debug_assert!(self.get(state.id()).is_none(), "duplicate lookup id");
        self.entries.push((state.id(), state));
    }

    /// Removes and returns the lookup with id `id`.
    pub fn remove(&mut self, id: LookupId) -> Option<LookupState> {
        let pos = self.entries.iter().position(|(i, _)| *i == id)?;
        Some(self.entries.remove(pos).1)
    }

    /// Iterates lookups in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &LookupState> {
        self.entries.iter().map(|(_, s)| s)
    }

    /// Drains all lookups in insertion order, keeping the table's capacity.
    pub fn drain(&mut self) -> impl Iterator<Item = (LookupId, LookupState)> + '_ {
        self.entries.drain(..)
    }
}

/// The iterative α-parallel lookup state machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LookupState {
    id: LookupId,
    target: NodeId,
    purpose: LookupPurpose,
    own_id: NodeId,
    /// Candidates sorted ascending by distance to the target.
    shortlist: Vec<Candidate>,
    capacity: usize,
    k: usize,
    alpha: usize,
    in_flight: usize,
    responded: usize,
    /// FIND_NODE / FIND_VALUE queries handed out so far.
    messages_sent: u32,
    /// Whether a `Retrieve` lookup has hit a node holding the value.
    value_found: bool,
    /// Watermark: every shortlist entry below this index is known to be
    /// non-`Untried`. States never revert to `Untried`, so the only thing
    /// that can lower the bound is an insertion — [`merge_chunk`] clamps
    /// it to the first insert position. Lets [`next_queries_into`] and
    /// [`is_finished`] skip the settled prefix instead of rescanning the
    /// whole shortlist on every response.
    ///
    /// [`merge_chunk`]: LookupState::merge_chunk
    /// [`next_queries_into`]: LookupState::next_queries_into
    /// [`is_finished`]: LookupState::is_finished
    untried_floor: usize,
}

impl LookupState {
    /// Creates a lookup seeded from the node's routing table.
    pub fn new(
        id: LookupId,
        target: NodeId,
        purpose: LookupPurpose,
        own_id: NodeId,
        seeds: &[Contact],
        config: &KademliaConfig,
    ) -> Self {
        LookupState::with_scratch(
            id,
            target,
            purpose,
            own_id,
            seeds,
            config,
            LookupScratch::default(),
        )
    }

    /// [`LookupState::new`] from a pooled shortlist arena: the arena is
    /// reset (cleared) and reserved to the worst-case shortlist footprint
    /// (`capacity + k` — a merge can transiently overshoot capacity by one
    /// response's worth of contacts before pruning), so a warm arena never
    /// grows again.
    pub fn with_scratch(
        id: LookupId,
        target: NodeId,
        purpose: LookupPurpose,
        own_id: NodeId,
        seeds: &[Contact],
        config: &KademliaConfig,
        scratch: LookupScratch,
    ) -> Self {
        let mut shortlist = scratch.shortlist;
        shortlist.clear();
        let capacity = config.shortlist_capacity();
        shortlist.reserve(capacity + config.k);
        let mut state = LookupState {
            id,
            target,
            purpose,
            own_id,
            shortlist,
            capacity,
            k: config.k,
            alpha: config.alpha,
            in_flight: 0,
            responded: 0,
            messages_sent: 0,
            value_found: false,
            untried_floor: 0,
        };
        state.merge_candidates(seeds, 1);
        state
    }

    /// Reclaims the shortlist arena for pooling (see [`LookupScratch`]).
    pub fn into_scratch(mut self) -> LookupScratch {
        self.shortlist.clear();
        LookupScratch {
            shortlist: self.shortlist,
        }
    }

    /// The lookup's id.
    pub fn id(&self) -> LookupId {
        self.id
    }

    /// The lookup target.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The lookup purpose.
    pub fn purpose(&self) -> LookupPurpose {
        self.purpose
    }

    /// Queries currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Nodes successfully contacted so far.
    pub fn responded(&self) -> usize {
        self.responded
    }

    /// Queries handed out over the lookup's lifetime (each becomes one
    /// FIND_NODE / FIND_VALUE RPC).
    pub fn messages_sent(&self) -> u32 {
        self.messages_sent
    }

    /// Whether a `Retrieve` lookup found its value.
    pub fn value_found(&self) -> bool {
        self.value_found
    }

    /// Marks the value as found (a queried node answered with it). Ends
    /// the lookup: [`LookupState::is_finished`] becomes true and no
    /// further queries are handed out.
    pub fn mark_value_found(&mut self) {
        self.value_found = true;
    }

    /// Hop depth of the closest responding node — the lookup's hop count
    /// (see [`LookupState::new`]'s seeding: routing-table seeds are hop 1).
    /// 0 when nothing responded.
    pub fn result_hops(&self) -> u32 {
        self.shortlist
            .iter()
            .find(|c| c.state == CandidateState::Responded)
            .map_or(0, |c| c.hop)
    }

    /// Marks up to `α − in_flight` closest untried candidates as in-flight
    /// and returns them for the driver to query.
    pub fn next_queries(&mut self) -> Vec<Contact> {
        let mut queries = Vec::new();
        self.next_queries_into(&mut queries);
        queries
    }

    /// [`LookupState::next_queries`] into a caller-provided buffer
    /// (cleared first) — the allocation-free variant the simulator's pooled
    /// query buffer uses.
    pub fn next_queries_into(&mut self, out: &mut Vec<Contact>) {
        out.clear();
        if self.responded >= self.k || self.value_found {
            return;
        }
        // Everything below the watermark is known non-`Untried`; entries
        // scanned here are either already settled or get marked in-flight,
        // so the watermark advances to wherever the scan stops.
        let mut idx = self.untried_floor;
        while idx < self.shortlist.len() {
            if self.in_flight >= self.alpha {
                break;
            }
            let cand = &mut self.shortlist[idx];
            if cand.state == CandidateState::Untried {
                cand.state = CandidateState::InFlight;
                self.in_flight += 1;
                out.push(cand.contact);
            }
            idx += 1;
        }
        self.untried_floor = idx;
        self.messages_sent += out.len() as u32;
    }

    /// Feeds a successful response from `from`, merging the returned
    /// contacts into the shortlist.
    pub fn on_response(&mut self, from: &NodeId, returned: &[Contact]) {
        let mut from_hop = 1;
        if let Some(pos) = self.candidate_position(from) {
            if self.shortlist[pos].state == CandidateState::InFlight {
                self.in_flight -= 1;
            }
            if self.shortlist[pos].state != CandidateState::Responded {
                self.shortlist[pos].state = CandidateState::Responded;
                self.responded += 1;
            }
            from_hop = self.shortlist[pos].hop;
        }
        self.merge_candidates(returned, from_hop.saturating_add(1));
    }

    /// Feeds a failure (timeout or lost round trip) for `from`.
    pub fn on_failure(&mut self, from: &NodeId) {
        if let Some(pos) = self.candidate_position(from) {
            if self.shortlist[pos].state == CandidateState::InFlight {
                self.in_flight -= 1;
            }
            if self.shortlist[pos].state != CandidateState::Responded {
                self.shortlist[pos].state = CandidateState::Failed;
            }
        }
    }

    /// Whether the lookup is done: `k` successful contacts, the value
    /// found (for `Retrieve`), or candidates exhausted (nothing untried,
    /// nothing in flight).
    pub fn is_finished(&self) -> bool {
        if self.responded >= self.k || self.value_found {
            return true;
        }
        self.in_flight == 0
            && !self.shortlist[self.untried_floor..]
                .iter()
                .any(|c| c.state == CandidateState::Untried)
    }

    /// The closest successfully-contacted nodes — the lookup result, and
    /// the STORE targets for a dissemination.
    pub fn closest_responded(&self, count: usize) -> Vec<Contact> {
        let mut out = Vec::new();
        self.closest_responded_into(count, &mut out);
        out
    }

    /// [`LookupState::closest_responded`] into a caller-provided buffer
    /// (cleared first).
    pub fn closest_responded_into(&self, count: usize, out: &mut Vec<Contact>) {
        out.clear();
        out.extend(
            self.shortlist
                .iter()
                .filter(|c| c.state == CandidateState::Responded)
                .take(count)
                .map(|c| c.contact),
        );
    }

    fn candidate_position(&self, id: &NodeId) -> Option<usize> {
        // The shortlist is sorted by cached distance, and XOR distance to
        // the fixed target is injective — binary search by distance is an
        // exact id lookup.
        let dist = id.distance(&self.target);
        let pos = self.shortlist.partition_point(|c| c.dist < dist);
        match self.shortlist.get(pos) {
            Some(c) if c.dist == dist => {
                debug_assert_eq!(c.contact.id, *id, "injective distance");
                Some(pos)
            }
            _ => None,
        }
    }

    /// Inserts new candidates at hop depth `hop`, keeping the list sorted
    /// by distance and pruning the farthest *untried* entries beyond
    /// capacity.
    ///
    /// Candidates are staged on the stack with their distance computed
    /// once, sorted, and folded into the sorted shortlist with a single
    /// backward merge pass — every element moves at most once, instead of
    /// one `Vec::insert` shift per candidate. Because XOR distance to a
    /// fixed target is injective, a distance collision *is* a duplicate
    /// node, so the staging pass also answers the duplicate checks.
    ///
    /// Equivalence of the fast reject: a contact farther than everything
    /// in a full-to-capacity shortlist would end up with rank beyond
    /// `capacity` with every closer entry still present at prune time, so
    /// the prune's back-scan is guaranteed to reach and remove it —
    /// skipping it up front is behaviorally identical.
    fn merge_candidates(&mut self, contacts: &[Contact], hop: u32) {
        const BATCH: usize = 24;
        for chunk in contacts.chunks(BATCH) {
            self.merge_chunk(chunk, hop);
        }
        // Prune: drop farthest untried candidates beyond capacity.
        if self.shortlist.len() > self.capacity {
            let mut excess = self.shortlist.len() - self.capacity;
            let mut i = self.shortlist.len();
            while excess > 0 && i > 0 {
                i -= 1;
                if self.shortlist[i].state == CandidateState::Untried {
                    self.shortlist.remove(i);
                    excess -= 1;
                }
            }
        }
    }

    fn merge_chunk(&mut self, chunk: &[Contact], hop: u32) {
        let Some(&first) = chunk.first() else { return };
        let stage = |contact: Contact| Candidate {
            contact,
            state: CandidateState::Untried,
            hop,
            dist: contact.id.distance(&self.target),
        };
        // Stage every candidate with its distance computed once, dropping
        // the owner itself.
        let mut staged = [stage(first); 24];
        let mut m = 0;
        for &contact in chunk {
            if contact.id == self.own_id {
                continue;
            }
            staged[m] = stage(contact);
            m += 1;
        }
        if m == 0 {
            return;
        }
        // Simulator responses arrive distance-sorted (they are
        // `closest_into` output), which the whole filter below exploits;
        // arbitrary callers may not be, so normalize: sort and drop
        // in-batch duplicates (equal distance = same node). The sorted
        // path cannot contain in-batch duplicates — they would violate
        // strict ascent.
        if !(1..m).all(|i| staged[i - 1].dist < staged[i].dist) {
            staged[..m].sort_unstable_by_key(|s| s.dist);
            let mut unique = 1;
            for i in 1..m {
                if staged[i].dist != staged[unique - 1].dist {
                    staged[unique] = staged[i];
                    unique += 1;
                }
            }
            m = unique;
        }
        // Filter against the current shortlist with one forward scan:
        // both sides are now sorted, so the duplicate probe is a
        // sequential two-pointer walk instead of a binary search per
        // candidate — and when the list is at capacity, one comparison
        // against the current worst entry rejects the whole remaining
        // tail (the fast reject above, applied once instead of per
        // contact).
        let at_capacity = self.shortlist.len() >= self.capacity;
        let worst = self.shortlist.last().map(|c| c.dist);
        let mut keep = 0;
        let mut p = 0;
        for i in 0..m {
            let d = staged[i].dist;
            if at_capacity && worst.is_some_and(|w| d > w) {
                break;
            }
            while p < self.shortlist.len() && self.shortlist[p].dist < d {
                p += 1;
            }
            if self.shortlist.get(p).is_some_and(|c| c.dist == d) {
                continue;
            }
            if keep == 0 {
                // First fresh `Untried` entry lands at index `p`; the
                // watermark must not skip it.
                self.untried_floor = self.untried_floor.min(p);
            }
            staged[keep] = staged[i];
            keep += 1;
        }
        if keep == 0 {
            return;
        }
        let staged = &staged[..keep];
        // One backward merge pass: grow the list, then fill from the back.
        let old_len = self.shortlist.len();
        self.shortlist.resize(old_len + keep, staged[0]);
        let mut i = old_len; // unmerged shortlist entries [..i]
        let mut j = keep; // unmerged staged entries [..j]
        for w in (0..old_len + keep).rev() {
            if j == 0 {
                break; // remaining shortlist prefix already in place
            }
            if i > 0 && self.shortlist[i - 1].dist > staged[j - 1].dist {
                self.shortlist[w] = self.shortlist[i - 1];
                i -= 1;
            } else {
                self.shortlist[w] = staged[j - 1];
                j -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::NodeAddr;

    fn contact(v: u64) -> Contact {
        Contact::new(NodeId::from_u64(v, 32), NodeAddr(v as u32))
    }

    fn config(k: usize, alpha: usize) -> KademliaConfig {
        KademliaConfig::builder()
            .bits(32)
            .k(k)
            .alpha(alpha)
            .build()
            .expect("valid")
    }

    fn lookup(target: u64, seeds: &[u64], k: usize, alpha: usize) -> LookupState {
        LookupState::new(
            1,
            NodeId::from_u64(target, 32),
            LookupPurpose::Locate,
            NodeId::from_u64(u32::MAX as u64, 32),
            &seeds.iter().map(|&v| contact(v)).collect::<Vec<_>>(),
            &config(k, alpha),
        )
    }

    #[test]
    fn queries_alpha_closest_first() {
        let mut s = lookup(0, &[1, 2, 50, 100], 20, 2);
        let q = s.next_queries();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0], contact(1));
        assert_eq!(q[1], contact(2));
        assert_eq!(s.in_flight(), 2);
        // No more slots until a response or failure arrives.
        assert!(s.next_queries().is_empty());
    }

    #[test]
    fn response_frees_slot_and_merges_contacts() {
        let mut s = lookup(0, &[1, 2, 50], 20, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), &[contact(3), contact(4)]);
        assert_eq!(s.responded(), 1);
        let q = s.next_queries();
        // Closest untried are now 3 (just merged); one slot free.
        assert_eq!(q, vec![contact(3)]);
    }

    #[test]
    fn finishes_after_k_successes() {
        let mut s = lookup(0, &[1, 2, 3], 2, 3);
        let q = s.next_queries();
        assert_eq!(q.len(), 3);
        s.on_response(&NodeId::from_u64(1, 32), &[]);
        assert!(!s.is_finished());
        s.on_response(&NodeId::from_u64(2, 32), &[]);
        assert!(s.is_finished(), "k=2 successes reached");
        assert!(
            s.next_queries().is_empty(),
            "finished lookups stop querying"
        );
    }

    #[test]
    fn finishes_on_exhaustion() {
        let mut s = lookup(0, &[1, 2], 20, 3);
        let _ = s.next_queries();
        s.on_failure(&NodeId::from_u64(1, 32));
        assert!(!s.is_finished(), "one query still in flight");
        s.on_failure(&NodeId::from_u64(2, 32));
        assert!(s.is_finished(), "all candidates failed");
        assert_eq!(s.responded(), 0);
    }

    #[test]
    fn empty_seed_lookup_is_immediately_finished() {
        let s = lookup(0, &[], 20, 3);
        assert!(s.is_finished());
    }

    #[test]
    fn own_id_and_duplicates_excluded() {
        let own = u32::MAX as u64;
        let mut s = lookup(0, &[1, 1, own], 20, 5);
        let q = s.next_queries();
        assert_eq!(q.len(), 1, "duplicate and self filtered");
    }

    #[test]
    fn closest_responded_sorted_by_distance() {
        let mut s = lookup(0, &[8, 1, 4], 20, 3);
        let _ = s.next_queries();
        for v in [8u64, 1, 4] {
            s.on_response(&NodeId::from_u64(v, 32), &[]);
        }
        let top = s.closest_responded(2);
        assert_eq!(top, vec![contact(1), contact(4)]);
    }

    #[test]
    fn failed_candidates_not_in_result() {
        let mut s = lookup(0, &[1, 2], 20, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(2, 32), &[]);
        s.on_failure(&NodeId::from_u64(1, 32));
        assert_eq!(s.closest_responded(5), vec![contact(2)]);
    }

    #[test]
    fn shortlist_capacity_prunes_farthest_untried() {
        let cfg = KademliaConfig::builder()
            .bits(32)
            .k(2)
            .alpha(1)
            .shortlist_factor(2)
            .build()
            .expect("valid");
        let mut s = LookupState::new(
            1,
            NodeId::from_u64(0, 32),
            LookupPurpose::Locate,
            NodeId::from_u64(u32::MAX as u64, 32),
            &(1..=10).map(contact).collect::<Vec<_>>(),
            &cfg,
        );
        // Capacity is 4; merging kept only the closest 4 untried.
        assert_eq!(s.next_queries().len(), 1);
        let untried_or_inflight = 4;
        let total: usize = s.shortlist.len();
        assert_eq!(total, untried_or_inflight);
    }

    #[test]
    fn late_duplicate_response_not_double_counted() {
        let mut s = lookup(0, &[1, 2], 2, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), &[]);
        s.on_response(&NodeId::from_u64(1, 32), &[]);
        assert_eq!(s.responded(), 1);
    }

    #[test]
    fn failure_after_response_keeps_responded_state() {
        let mut s = lookup(0, &[1], 5, 1);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), &[]);
        s.on_failure(&NodeId::from_u64(1, 32));
        assert_eq!(s.responded(), 1);
        assert_eq!(s.closest_responded(5).len(), 1);
    }

    #[test]
    fn unknown_sender_ignored() {
        let mut s = lookup(0, &[1], 5, 1);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(77, 32), &[contact(5)]);
        // 77 wasn't a candidate; its contacts still merge.
        assert_eq!(s.responded(), 0);
        assert!(
            s.next_queries().is_empty(),
            "alpha=1 and 1 already in flight"
        );
    }

    #[test]
    fn purpose_and_accessors() {
        let s = lookup(7, &[1], 5, 1);
        assert_eq!(s.id(), 1);
        assert_eq!(s.target(), NodeId::from_u64(7, 32));
        assert_eq!(s.purpose(), LookupPurpose::Locate);
    }

    #[test]
    fn no_progress_terminates_short_of_k() {
        // k = 10 can never be reached: the only contacts in the system are
        // the three seeds, and every response returns already-known nodes.
        let mut s = lookup(0, &[1, 2, 3], 10, 2);
        while !s.is_finished() {
            for c in s.next_queries() {
                s.on_response(&c.id, &[contact(1), contact(2), contact(3)]);
            }
        }
        assert_eq!(s.responded(), 3, "all three seeds responded");
        assert!(s.is_finished(), "no untried candidates left");
        assert!(s.next_queries().is_empty(), "finished lookups stay quiet");
        assert_eq!(s.closest_responded(10).len(), 3);
    }

    #[test]
    fn alpha_cap_never_exceeded_mid_lookup() {
        // Drive a lookup whose responses keep feeding fresh candidates and
        // check the α cap after every single state transition.
        let alpha = 3;
        let mut s = lookup(0, &[10, 20, 30, 40, 50], 100, alpha);
        let mut next_new = 1000u64;
        let mut round = 0;
        while !s.is_finished() && round < 50 {
            round += 1;
            let queries = s.next_queries();
            assert!(
                s.in_flight() <= alpha,
                "in_flight {} exceeds alpha after next_queries",
                s.in_flight()
            );
            if !queries.is_empty() {
                assert_eq!(
                    s.in_flight(),
                    alpha,
                    "next_queries tops the window back up to exactly alpha \
                     while untried candidates remain"
                );
            }
            for (i, c) in queries.iter().enumerate() {
                // Alternate: responses (bearing two new candidates each)
                // and failures.
                if i % 2 == 0 {
                    let fresh = vec![contact(next_new), contact(next_new + 1)];
                    next_new += 2;
                    s.on_response(&c.id, &fresh);
                } else {
                    s.on_failure(&c.id);
                }
                assert!(
                    s.in_flight() <= alpha,
                    "in_flight {} exceeds alpha mid-round",
                    s.in_flight()
                );
            }
        }
        assert!(s.responded() > 0);
    }

    #[test]
    fn every_shortlist_member_failing_yields_empty_result() {
        let mut s = lookup(0, &[1, 2, 3, 4], 5, 2);
        let mut failed = 0;
        while !s.is_finished() {
            let queries = s.next_queries();
            assert!(!queries.is_empty(), "unfinished lookup must make progress");
            for c in queries {
                s.on_failure(&c.id);
                failed += 1;
            }
        }
        assert_eq!(failed, 4, "all four candidates were tried and failed");
        assert_eq!(s.responded(), 0);
        assert_eq!(s.result_hops(), 0, "no responder, no hop count");
        assert!(s.closest_responded(5).is_empty());
        assert!(s.next_queries().is_empty());
    }

    #[test]
    fn hop_depth_tracks_discovery_chain() {
        let mut s = lookup(0, &[100], 20, 1);
        let q = s.next_queries();
        assert_eq!(q, vec![contact(100)]);
        // Seed (hop 1) responds with a closer node -> that node is hop 2.
        s.on_response(&NodeId::from_u64(100, 32), &[contact(4)]);
        let q = s.next_queries();
        assert_eq!(q, vec![contact(4)]);
        s.on_response(&NodeId::from_u64(4, 32), &[contact(1)]);
        let q = s.next_queries();
        assert_eq!(q, vec![contact(1)]);
        // Hop-3 node is now the closest responder.
        s.on_response(&NodeId::from_u64(1, 32), &[]);
        assert_eq!(s.result_hops(), 3);
        assert_eq!(s.messages_sent(), 3);
    }

    #[test]
    fn partition_seeds_is_disjoint_and_balanced() {
        let seeds: Vec<Contact> = (1..=7).map(contact).collect();
        let paths = partition_seeds(seeds.clone(), 3);
        assert_eq!(paths.len(), 3);
        // Round-robin: sizes differ by at most one, closest seeds spread
        // across paths.
        assert_eq!(paths[0].len(), 3);
        assert_eq!(paths[1].len(), 2);
        assert_eq!(paths[2].len(), 2);
        assert_eq!(paths[0][0], contact(1));
        assert_eq!(paths[1][0], contact(2));
        assert_eq!(paths[2][0], contact(3));
        // Disjoint: every seed appears in exactly one path.
        let mut all: Vec<Contact> = paths.into_iter().flatten().collect();
        all.sort_by_key(|c| c.addr.0);
        assert_eq!(all, seeds);
    }

    #[test]
    fn partition_seeds_handles_degenerate_inputs() {
        assert!(partition_seeds(Vec::new(), 3).is_empty());
        let one = partition_seeds(vec![contact(1)], 4);
        assert_eq!(one, vec![vec![contact(1)]], "one seed, one path");
        let d_zero = partition_seeds(vec![contact(1), contact(2)], 0);
        assert_eq!(d_zero.len(), 1, "d = 0 clamps to a single path");
        assert_eq!(d_zero[0].len(), 2);
    }

    #[test]
    fn value_found_ends_retrieve_lookups() {
        let mut s = LookupState::new(
            1,
            NodeId::from_u64(0, 32),
            LookupPurpose::Retrieve,
            NodeId::from_u64(u32::MAX as u64, 32),
            &[contact(1), contact(2), contact(3)],
            &config(20, 1),
        );
        let _ = s.next_queries();
        assert!(!s.is_finished());
        s.on_response(&NodeId::from_u64(1, 32), &[]);
        s.mark_value_found();
        assert!(s.value_found());
        assert!(s.is_finished(), "value hit terminates the lookup");
        assert!(s.next_queries().is_empty(), "no queries after the hit");
        assert_eq!(s.result_hops(), 1);
    }

    #[test]
    fn lookup_table_iterates_in_insertion_order() {
        // Regression test for the determinism audit: per-node lookup
        // bookkeeping used to live in a HashMap whose iteration order was
        // hash-dependent; LookupTable pins it to insertion order.
        let mut t = LookupTable::new();
        for id in [7u64, 3, 9, 1] {
            t.insert(LookupState::new(
                id,
                NodeId::from_u64(0, 32),
                LookupPurpose::Locate,
                NodeId::from_u64(u32::MAX as u64, 32),
                &[contact(1)],
                &config(20, 3),
            ));
        }
        let ids: Vec<LookupId> = t.iter().map(|s| s.id()).collect();
        assert_eq!(ids, vec![7, 3, 9, 1], "insertion order, not key order");
        assert_eq!(t.remove(9).map(|s| s.id()), Some(9));
        assert!(t.remove(9).is_none(), "double-remove is a no-op");
        let ids: Vec<LookupId> = t.iter().map(|s| s.id()).collect();
        assert_eq!(ids, vec![7, 3, 1], "removal keeps survivors in order");
        assert_eq!(t.get(3).map(|s| s.id()), Some(3));
        assert!(t.get(9).is_none());
        let drained: Vec<LookupId> = t.drain().map(|(id, _)| id).collect();
        assert_eq!(drained, vec![7, 3, 1], "drain is insertion order too");
        assert!(t.is_empty());
    }

    #[test]
    fn scratch_reuse_resets_without_reallocating() {
        let cfg = config(2, 2);
        let mut s = lookup(0, &[1, 2, 3], 2, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), &[]);
        s.on_response(&NodeId::from_u64(2, 32), &[]);
        assert!(s.is_finished());
        let scratch = s.into_scratch();
        let cap = scratch.shortlist.capacity();
        assert!(
            cap >= cfg.shortlist_capacity() + cfg.k,
            "arena reserved to worst-case shortlist footprint"
        );
        let mut s2 = LookupState::with_scratch(
            2,
            NodeId::from_u64(0, 32),
            LookupPurpose::Locate,
            NodeId::from_u64(u32::MAX as u64, 32),
            &[contact(5)],
            &cfg,
            scratch,
        );
        assert_eq!(s2.next_queries(), vec![contact(5)]);
        assert_eq!(
            s2.shortlist.capacity(),
            cap,
            "warm arena is reset, never reallocated"
        );
    }
}
