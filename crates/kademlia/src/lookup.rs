//! The iterative lookup state machine.
//!
//! A lookup keeps a *shortlist* of candidate contacts ordered by XOR
//! distance to the target, queries up to `α` of them concurrently, merges
//! the contacts each response returns, and terminates when either `k` nodes
//! have been successfully contacted or no untried candidates remain
//! (paper, Section 4.1: "this process ends when a number of k nodes have
//! been successfully contacted, or no more progress is made in getting
//! closer to the target").
//!
//! The state machine is pure — it never performs I/O. The network driver
//! ([`crate::network::SimNetwork`]) feeds it responses/failures and sends
//! whatever [`LookupState::next_queries`] asks for, which keeps the
//! protocol logic unit-testable without a simulator.

use crate::config::KademliaConfig;
use crate::contact::Contact;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// Unique id of a lookup within one simulation.
pub type LookupId = u64;

/// Why the lookup is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LookupPurpose {
    /// Locate a node / data object (the paper's "lookup procedure").
    Locate,
    /// Locate the `k` closest nodes and then store a data object on them
    /// (the paper's "dissemination procedure").
    Disseminate,
}

/// State of one shortlist candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum CandidateState {
    Untried,
    InFlight,
    Responded,
    Failed,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Candidate {
    contact: Contact,
    state: CandidateState,
}

/// The iterative α-parallel lookup state machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LookupState {
    id: LookupId,
    target: NodeId,
    purpose: LookupPurpose,
    own_id: NodeId,
    /// Candidates sorted ascending by distance to the target.
    shortlist: Vec<Candidate>,
    capacity: usize,
    k: usize,
    alpha: usize,
    in_flight: usize,
    responded: usize,
}

impl LookupState {
    /// Creates a lookup seeded from the node's routing table.
    pub fn new(
        id: LookupId,
        target: NodeId,
        purpose: LookupPurpose,
        own_id: NodeId,
        seeds: Vec<Contact>,
        config: &KademliaConfig,
    ) -> Self {
        let mut state = LookupState {
            id,
            target,
            purpose,
            own_id,
            shortlist: Vec::new(),
            capacity: config.shortlist_capacity(),
            k: config.k,
            alpha: config.alpha,
            in_flight: 0,
            responded: 0,
        };
        state.merge_candidates(seeds);
        state
    }

    /// The lookup's id.
    pub fn id(&self) -> LookupId {
        self.id
    }

    /// The lookup target.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The lookup purpose.
    pub fn purpose(&self) -> LookupPurpose {
        self.purpose
    }

    /// Queries currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Nodes successfully contacted so far.
    pub fn responded(&self) -> usize {
        self.responded
    }

    /// Marks up to `α − in_flight` closest untried candidates as in-flight
    /// and returns them for the driver to query.
    pub fn next_queries(&mut self) -> Vec<Contact> {
        let mut queries = Vec::new();
        if self.responded >= self.k {
            return queries;
        }
        for cand in self.shortlist.iter_mut() {
            if self.in_flight >= self.alpha {
                break;
            }
            if cand.state == CandidateState::Untried {
                cand.state = CandidateState::InFlight;
                self.in_flight += 1;
                queries.push(cand.contact);
            }
        }
        queries
    }

    /// Feeds a successful response from `from`, merging the returned
    /// contacts into the shortlist.
    pub fn on_response(&mut self, from: &NodeId, returned: Vec<Contact>) {
        if let Some(pos) = self.candidate_position(from) {
            if self.shortlist[pos].state == CandidateState::InFlight {
                self.in_flight -= 1;
            }
            if self.shortlist[pos].state != CandidateState::Responded {
                self.shortlist[pos].state = CandidateState::Responded;
                self.responded += 1;
            }
        }
        self.merge_candidates(returned);
    }

    /// Feeds a failure (timeout or lost round trip) for `from`.
    pub fn on_failure(&mut self, from: &NodeId) {
        if let Some(pos) = self.candidate_position(from) {
            if self.shortlist[pos].state == CandidateState::InFlight {
                self.in_flight -= 1;
            }
            if self.shortlist[pos].state != CandidateState::Responded {
                self.shortlist[pos].state = CandidateState::Failed;
            }
        }
    }

    /// Whether the lookup is done: `k` successful contacts, or candidates
    /// exhausted (nothing untried, nothing in flight).
    pub fn is_finished(&self) -> bool {
        if self.responded >= self.k {
            return true;
        }
        self.in_flight == 0
            && !self
                .shortlist
                .iter()
                .any(|c| c.state == CandidateState::Untried)
    }

    /// The closest successfully-contacted nodes — the lookup result, and
    /// the STORE targets for a dissemination.
    pub fn closest_responded(&self, count: usize) -> Vec<Contact> {
        self.shortlist
            .iter()
            .filter(|c| c.state == CandidateState::Responded)
            .take(count)
            .map(|c| c.contact)
            .collect()
    }

    fn candidate_position(&self, id: &NodeId) -> Option<usize> {
        self.shortlist.iter().position(|c| c.contact.id == *id)
    }

    /// Inserts new candidates keeping the list sorted by distance and
    /// pruning the farthest *untried* entries beyond capacity.
    fn merge_candidates(&mut self, contacts: Vec<Contact>) {
        for contact in contacts {
            if contact.id == self.own_id {
                continue;
            }
            if self.shortlist.iter().any(|c| c.contact.id == contact.id) {
                continue;
            }
            let dist = contact.id.distance(&self.target);
            let pos = self
                .shortlist
                .partition_point(|c| c.contact.id.distance(&self.target) <= dist);
            self.shortlist.insert(
                pos,
                Candidate {
                    contact,
                    state: CandidateState::Untried,
                },
            );
        }
        // Prune: drop farthest untried candidates beyond capacity.
        if self.shortlist.len() > self.capacity {
            let mut excess = self.shortlist.len() - self.capacity;
            let mut i = self.shortlist.len();
            while excess > 0 && i > 0 {
                i -= 1;
                if self.shortlist[i].state == CandidateState::Untried {
                    self.shortlist.remove(i);
                    excess -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::NodeAddr;

    fn contact(v: u64) -> Contact {
        Contact::new(NodeId::from_u64(v, 32), NodeAddr(v as u32))
    }

    fn config(k: usize, alpha: usize) -> KademliaConfig {
        KademliaConfig::builder()
            .bits(32)
            .k(k)
            .alpha(alpha)
            .build()
            .expect("valid")
    }

    fn lookup(target: u64, seeds: &[u64], k: usize, alpha: usize) -> LookupState {
        LookupState::new(
            1,
            NodeId::from_u64(target, 32),
            LookupPurpose::Locate,
            NodeId::from_u64(u32::MAX as u64, 32),
            seeds.iter().map(|&v| contact(v)).collect(),
            &config(k, alpha),
        )
    }

    #[test]
    fn queries_alpha_closest_first() {
        let mut s = lookup(0, &[1, 2, 50, 100], 20, 2);
        let q = s.next_queries();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0], contact(1));
        assert_eq!(q[1], contact(2));
        assert_eq!(s.in_flight(), 2);
        // No more slots until a response or failure arrives.
        assert!(s.next_queries().is_empty());
    }

    #[test]
    fn response_frees_slot_and_merges_contacts() {
        let mut s = lookup(0, &[1, 2, 50], 20, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), vec![contact(3), contact(4)]);
        assert_eq!(s.responded(), 1);
        let q = s.next_queries();
        // Closest untried are now 3 (just merged); one slot free.
        assert_eq!(q, vec![contact(3)]);
    }

    #[test]
    fn finishes_after_k_successes() {
        let mut s = lookup(0, &[1, 2, 3], 2, 3);
        let q = s.next_queries();
        assert_eq!(q.len(), 3);
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        assert!(!s.is_finished());
        s.on_response(&NodeId::from_u64(2, 32), vec![]);
        assert!(s.is_finished(), "k=2 successes reached");
        assert!(
            s.next_queries().is_empty(),
            "finished lookups stop querying"
        );
    }

    #[test]
    fn finishes_on_exhaustion() {
        let mut s = lookup(0, &[1, 2], 20, 3);
        let _ = s.next_queries();
        s.on_failure(&NodeId::from_u64(1, 32));
        assert!(!s.is_finished(), "one query still in flight");
        s.on_failure(&NodeId::from_u64(2, 32));
        assert!(s.is_finished(), "all candidates failed");
        assert_eq!(s.responded(), 0);
    }

    #[test]
    fn empty_seed_lookup_is_immediately_finished() {
        let s = lookup(0, &[], 20, 3);
        assert!(s.is_finished());
    }

    #[test]
    fn own_id_and_duplicates_excluded() {
        let own = u32::MAX as u64;
        let mut s = lookup(0, &[1, 1, own], 20, 5);
        let q = s.next_queries();
        assert_eq!(q.len(), 1, "duplicate and self filtered");
    }

    #[test]
    fn closest_responded_sorted_by_distance() {
        let mut s = lookup(0, &[8, 1, 4], 20, 3);
        let _ = s.next_queries();
        for v in [8u64, 1, 4] {
            s.on_response(&NodeId::from_u64(v, 32), vec![]);
        }
        let top = s.closest_responded(2);
        assert_eq!(top, vec![contact(1), contact(4)]);
    }

    #[test]
    fn failed_candidates_not_in_result() {
        let mut s = lookup(0, &[1, 2], 20, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(2, 32), vec![]);
        s.on_failure(&NodeId::from_u64(1, 32));
        assert_eq!(s.closest_responded(5), vec![contact(2)]);
    }

    #[test]
    fn shortlist_capacity_prunes_farthest_untried() {
        let cfg = KademliaConfig::builder()
            .bits(32)
            .k(2)
            .alpha(1)
            .shortlist_factor(2)
            .build()
            .expect("valid");
        let mut s = LookupState::new(
            1,
            NodeId::from_u64(0, 32),
            LookupPurpose::Locate,
            NodeId::from_u64(u32::MAX as u64, 32),
            (1..=10).map(contact).collect(),
            &cfg,
        );
        // Capacity is 4; merging kept only the closest 4 untried.
        assert_eq!(s.next_queries().len(), 1);
        let untried_or_inflight = 4;
        let total: usize = s.shortlist.len();
        assert_eq!(total, untried_or_inflight);
    }

    #[test]
    fn late_duplicate_response_not_double_counted() {
        let mut s = lookup(0, &[1, 2], 2, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        assert_eq!(s.responded(), 1);
    }

    #[test]
    fn failure_after_response_keeps_responded_state() {
        let mut s = lookup(0, &[1], 5, 1);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        s.on_failure(&NodeId::from_u64(1, 32));
        assert_eq!(s.responded(), 1);
        assert_eq!(s.closest_responded(5).len(), 1);
    }

    #[test]
    fn unknown_sender_ignored() {
        let mut s = lookup(0, &[1], 5, 1);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(77, 32), vec![contact(5)]);
        // 77 wasn't a candidate; its contacts still merge.
        assert_eq!(s.responded(), 0);
        assert!(
            s.next_queries().is_empty(),
            "alpha=1 and 1 already in flight"
        );
    }

    #[test]
    fn purpose_and_accessors() {
        let s = lookup(7, &[1], 5, 1);
        assert_eq!(s.id(), 1);
        assert_eq!(s.target(), NodeId::from_u64(7, 32));
        assert_eq!(s.purpose(), LookupPurpose::Locate);
    }
}
