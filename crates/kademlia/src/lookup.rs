//! The iterative lookup state machine.
//!
//! A lookup keeps a *shortlist* of candidate contacts ordered by XOR
//! distance to the target, queries up to `α` of them concurrently, merges
//! the contacts each response returns, and terminates when either `k` nodes
//! have been successfully contacted or no untried candidates remain
//! (paper, Section 4.1: "this process ends when a number of k nodes have
//! been successfully contacted, or no more progress is made in getting
//! closer to the target").
//!
//! The state machine is pure — it never performs I/O. The network driver
//! ([`crate::network::SimNetwork`]) feeds it responses/failures and sends
//! whatever [`LookupState::next_queries`] asks for, which keeps the
//! protocol logic unit-testable without a simulator.

use crate::config::KademliaConfig;
use crate::contact::Contact;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// Unique id of a lookup within one simulation.
pub type LookupId = u64;

/// Why the lookup is running.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LookupPurpose {
    /// Locate a node / data object (the paper's "lookup procedure").
    Locate,
    /// Locate the `k` closest nodes and then store a data object on them
    /// (the paper's "dissemination procedure").
    Disseminate,
    /// Retrieve a stored data object: like `Locate`, but queried nodes
    /// that hold the key answer with the value, which ends the lookup
    /// early (FIND_VALUE semantics).
    Retrieve,
    /// Maintenance: a periodic bucket-refresh lookup. Protocol-identical
    /// to `Locate`; kept distinct so service telemetry can separate
    /// maintenance traffic from data traffic.
    Refresh,
    /// Maintenance: the self-lookup a node performs when joining.
    Bootstrap,
    /// Defense: a self-healing repair lookup launched after a neighbor
    /// was evicted, targeting the lost contact's id region so surviving
    /// neighbors' closest sets refill the hole. Protocol-identical to
    /// `Locate`; kept distinct so defense overhead is attributable.
    Repair,
}

/// Splits lookup seeds into `d` disjoint first-hop sets for a
/// disjoint-path lookup ([`crate::network::SimNetwork::start_find_value_disjoint`]).
///
/// Seeds are dealt round-robin in distance order, so every path starts
/// with a similar distance profile (path 0 gets the closest seed, path 1
/// the second-closest, …) instead of one privileged path hoarding all the
/// close contacts. Empty paths are dropped: with fewer than `d` seeds the
/// lookup degrades gracefully to as many paths as it can seed.
pub fn partition_seeds(seeds: Vec<Contact>, d: usize) -> Vec<Vec<Contact>> {
    let d = d.max(1);
    let mut paths: Vec<Vec<Contact>> = vec![Vec::new(); d.min(seeds.len().max(1))];
    for (i, seed) in seeds.into_iter().enumerate() {
        let slot = i % paths.len();
        paths[slot].push(seed);
    }
    paths.retain(|p| !p.is_empty());
    paths
}

/// State of one shortlist candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum CandidateState {
    Untried,
    InFlight,
    Responded,
    Failed,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Candidate {
    contact: Contact,
    state: CandidateState,
    /// Hop depth: seeds from the local routing table are hop 1; a contact
    /// learned from the response of a hop-`h` node is hop `h + 1`. The hop
    /// depth of the closest responder is the lookup's hop count — the
    /// quantity the Roos-style analytic hop distribution predicts.
    hop: u32,
}

/// The iterative α-parallel lookup state machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LookupState {
    id: LookupId,
    target: NodeId,
    purpose: LookupPurpose,
    own_id: NodeId,
    /// Candidates sorted ascending by distance to the target.
    shortlist: Vec<Candidate>,
    capacity: usize,
    k: usize,
    alpha: usize,
    in_flight: usize,
    responded: usize,
    /// FIND_NODE / FIND_VALUE queries handed out so far.
    messages_sent: u32,
    /// Whether a `Retrieve` lookup has hit a node holding the value.
    value_found: bool,
}

impl LookupState {
    /// Creates a lookup seeded from the node's routing table.
    pub fn new(
        id: LookupId,
        target: NodeId,
        purpose: LookupPurpose,
        own_id: NodeId,
        seeds: Vec<Contact>,
        config: &KademliaConfig,
    ) -> Self {
        let mut state = LookupState {
            id,
            target,
            purpose,
            own_id,
            shortlist: Vec::new(),
            capacity: config.shortlist_capacity(),
            k: config.k,
            alpha: config.alpha,
            in_flight: 0,
            responded: 0,
            messages_sent: 0,
            value_found: false,
        };
        state.merge_candidates(seeds, 1);
        state
    }

    /// The lookup's id.
    pub fn id(&self) -> LookupId {
        self.id
    }

    /// The lookup target.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// The lookup purpose.
    pub fn purpose(&self) -> LookupPurpose {
        self.purpose
    }

    /// Queries currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Nodes successfully contacted so far.
    pub fn responded(&self) -> usize {
        self.responded
    }

    /// Queries handed out over the lookup's lifetime (each becomes one
    /// FIND_NODE / FIND_VALUE RPC).
    pub fn messages_sent(&self) -> u32 {
        self.messages_sent
    }

    /// Whether a `Retrieve` lookup found its value.
    pub fn value_found(&self) -> bool {
        self.value_found
    }

    /// Marks the value as found (a queried node answered with it). Ends
    /// the lookup: [`LookupState::is_finished`] becomes true and no
    /// further queries are handed out.
    pub fn mark_value_found(&mut self) {
        self.value_found = true;
    }

    /// Hop depth of the closest responding node — the lookup's hop count
    /// (see [`LookupState::new`]'s seeding: routing-table seeds are hop 1).
    /// 0 when nothing responded.
    pub fn result_hops(&self) -> u32 {
        self.shortlist
            .iter()
            .find(|c| c.state == CandidateState::Responded)
            .map_or(0, |c| c.hop)
    }

    /// Marks up to `α − in_flight` closest untried candidates as in-flight
    /// and returns them for the driver to query.
    pub fn next_queries(&mut self) -> Vec<Contact> {
        let mut queries = Vec::new();
        if self.responded >= self.k || self.value_found {
            return queries;
        }
        for cand in self.shortlist.iter_mut() {
            if self.in_flight >= self.alpha {
                break;
            }
            if cand.state == CandidateState::Untried {
                cand.state = CandidateState::InFlight;
                self.in_flight += 1;
                queries.push(cand.contact);
            }
        }
        self.messages_sent += queries.len() as u32;
        queries
    }

    /// Feeds a successful response from `from`, merging the returned
    /// contacts into the shortlist.
    pub fn on_response(&mut self, from: &NodeId, returned: Vec<Contact>) {
        let mut from_hop = 1;
        if let Some(pos) = self.candidate_position(from) {
            if self.shortlist[pos].state == CandidateState::InFlight {
                self.in_flight -= 1;
            }
            if self.shortlist[pos].state != CandidateState::Responded {
                self.shortlist[pos].state = CandidateState::Responded;
                self.responded += 1;
            }
            from_hop = self.shortlist[pos].hop;
        }
        self.merge_candidates(returned, from_hop.saturating_add(1));
    }

    /// Feeds a failure (timeout or lost round trip) for `from`.
    pub fn on_failure(&mut self, from: &NodeId) {
        if let Some(pos) = self.candidate_position(from) {
            if self.shortlist[pos].state == CandidateState::InFlight {
                self.in_flight -= 1;
            }
            if self.shortlist[pos].state != CandidateState::Responded {
                self.shortlist[pos].state = CandidateState::Failed;
            }
        }
    }

    /// Whether the lookup is done: `k` successful contacts, the value
    /// found (for `Retrieve`), or candidates exhausted (nothing untried,
    /// nothing in flight).
    pub fn is_finished(&self) -> bool {
        if self.responded >= self.k || self.value_found {
            return true;
        }
        self.in_flight == 0
            && !self
                .shortlist
                .iter()
                .any(|c| c.state == CandidateState::Untried)
    }

    /// The closest successfully-contacted nodes — the lookup result, and
    /// the STORE targets for a dissemination.
    pub fn closest_responded(&self, count: usize) -> Vec<Contact> {
        self.shortlist
            .iter()
            .filter(|c| c.state == CandidateState::Responded)
            .take(count)
            .map(|c| c.contact)
            .collect()
    }

    fn candidate_position(&self, id: &NodeId) -> Option<usize> {
        self.shortlist.iter().position(|c| c.contact.id == *id)
    }

    /// Inserts new candidates at hop depth `hop`, keeping the list sorted
    /// by distance and pruning the farthest *untried* entries beyond
    /// capacity.
    fn merge_candidates(&mut self, contacts: Vec<Contact>, hop: u32) {
        for contact in contacts {
            if contact.id == self.own_id {
                continue;
            }
            if self.shortlist.iter().any(|c| c.contact.id == contact.id) {
                continue;
            }
            let dist = contact.id.distance(&self.target);
            let pos = self
                .shortlist
                .partition_point(|c| c.contact.id.distance(&self.target) <= dist);
            self.shortlist.insert(
                pos,
                Candidate {
                    contact,
                    state: CandidateState::Untried,
                    hop,
                },
            );
        }
        // Prune: drop farthest untried candidates beyond capacity.
        if self.shortlist.len() > self.capacity {
            let mut excess = self.shortlist.len() - self.capacity;
            let mut i = self.shortlist.len();
            while excess > 0 && i > 0 {
                i -= 1;
                if self.shortlist[i].state == CandidateState::Untried {
                    self.shortlist.remove(i);
                    excess -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::NodeAddr;

    fn contact(v: u64) -> Contact {
        Contact::new(NodeId::from_u64(v, 32), NodeAddr(v as u32))
    }

    fn config(k: usize, alpha: usize) -> KademliaConfig {
        KademliaConfig::builder()
            .bits(32)
            .k(k)
            .alpha(alpha)
            .build()
            .expect("valid")
    }

    fn lookup(target: u64, seeds: &[u64], k: usize, alpha: usize) -> LookupState {
        LookupState::new(
            1,
            NodeId::from_u64(target, 32),
            LookupPurpose::Locate,
            NodeId::from_u64(u32::MAX as u64, 32),
            seeds.iter().map(|&v| contact(v)).collect(),
            &config(k, alpha),
        )
    }

    #[test]
    fn queries_alpha_closest_first() {
        let mut s = lookup(0, &[1, 2, 50, 100], 20, 2);
        let q = s.next_queries();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0], contact(1));
        assert_eq!(q[1], contact(2));
        assert_eq!(s.in_flight(), 2);
        // No more slots until a response or failure arrives.
        assert!(s.next_queries().is_empty());
    }

    #[test]
    fn response_frees_slot_and_merges_contacts() {
        let mut s = lookup(0, &[1, 2, 50], 20, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), vec![contact(3), contact(4)]);
        assert_eq!(s.responded(), 1);
        let q = s.next_queries();
        // Closest untried are now 3 (just merged); one slot free.
        assert_eq!(q, vec![contact(3)]);
    }

    #[test]
    fn finishes_after_k_successes() {
        let mut s = lookup(0, &[1, 2, 3], 2, 3);
        let q = s.next_queries();
        assert_eq!(q.len(), 3);
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        assert!(!s.is_finished());
        s.on_response(&NodeId::from_u64(2, 32), vec![]);
        assert!(s.is_finished(), "k=2 successes reached");
        assert!(
            s.next_queries().is_empty(),
            "finished lookups stop querying"
        );
    }

    #[test]
    fn finishes_on_exhaustion() {
        let mut s = lookup(0, &[1, 2], 20, 3);
        let _ = s.next_queries();
        s.on_failure(&NodeId::from_u64(1, 32));
        assert!(!s.is_finished(), "one query still in flight");
        s.on_failure(&NodeId::from_u64(2, 32));
        assert!(s.is_finished(), "all candidates failed");
        assert_eq!(s.responded(), 0);
    }

    #[test]
    fn empty_seed_lookup_is_immediately_finished() {
        let s = lookup(0, &[], 20, 3);
        assert!(s.is_finished());
    }

    #[test]
    fn own_id_and_duplicates_excluded() {
        let own = u32::MAX as u64;
        let mut s = lookup(0, &[1, 1, own], 20, 5);
        let q = s.next_queries();
        assert_eq!(q.len(), 1, "duplicate and self filtered");
    }

    #[test]
    fn closest_responded_sorted_by_distance() {
        let mut s = lookup(0, &[8, 1, 4], 20, 3);
        let _ = s.next_queries();
        for v in [8u64, 1, 4] {
            s.on_response(&NodeId::from_u64(v, 32), vec![]);
        }
        let top = s.closest_responded(2);
        assert_eq!(top, vec![contact(1), contact(4)]);
    }

    #[test]
    fn failed_candidates_not_in_result() {
        let mut s = lookup(0, &[1, 2], 20, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(2, 32), vec![]);
        s.on_failure(&NodeId::from_u64(1, 32));
        assert_eq!(s.closest_responded(5), vec![contact(2)]);
    }

    #[test]
    fn shortlist_capacity_prunes_farthest_untried() {
        let cfg = KademliaConfig::builder()
            .bits(32)
            .k(2)
            .alpha(1)
            .shortlist_factor(2)
            .build()
            .expect("valid");
        let mut s = LookupState::new(
            1,
            NodeId::from_u64(0, 32),
            LookupPurpose::Locate,
            NodeId::from_u64(u32::MAX as u64, 32),
            (1..=10).map(contact).collect(),
            &cfg,
        );
        // Capacity is 4; merging kept only the closest 4 untried.
        assert_eq!(s.next_queries().len(), 1);
        let untried_or_inflight = 4;
        let total: usize = s.shortlist.len();
        assert_eq!(total, untried_or_inflight);
    }

    #[test]
    fn late_duplicate_response_not_double_counted() {
        let mut s = lookup(0, &[1, 2], 2, 2);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        assert_eq!(s.responded(), 1);
    }

    #[test]
    fn failure_after_response_keeps_responded_state() {
        let mut s = lookup(0, &[1], 5, 1);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        s.on_failure(&NodeId::from_u64(1, 32));
        assert_eq!(s.responded(), 1);
        assert_eq!(s.closest_responded(5).len(), 1);
    }

    #[test]
    fn unknown_sender_ignored() {
        let mut s = lookup(0, &[1], 5, 1);
        let _ = s.next_queries();
        s.on_response(&NodeId::from_u64(77, 32), vec![contact(5)]);
        // 77 wasn't a candidate; its contacts still merge.
        assert_eq!(s.responded(), 0);
        assert!(
            s.next_queries().is_empty(),
            "alpha=1 and 1 already in flight"
        );
    }

    #[test]
    fn purpose_and_accessors() {
        let s = lookup(7, &[1], 5, 1);
        assert_eq!(s.id(), 1);
        assert_eq!(s.target(), NodeId::from_u64(7, 32));
        assert_eq!(s.purpose(), LookupPurpose::Locate);
    }

    #[test]
    fn no_progress_terminates_short_of_k() {
        // k = 10 can never be reached: the only contacts in the system are
        // the three seeds, and every response returns already-known nodes.
        let mut s = lookup(0, &[1, 2, 3], 10, 2);
        while !s.is_finished() {
            for c in s.next_queries() {
                s.on_response(&c.id, vec![contact(1), contact(2), contact(3)]);
            }
        }
        assert_eq!(s.responded(), 3, "all three seeds responded");
        assert!(s.is_finished(), "no untried candidates left");
        assert!(s.next_queries().is_empty(), "finished lookups stay quiet");
        assert_eq!(s.closest_responded(10).len(), 3);
    }

    #[test]
    fn alpha_cap_never_exceeded_mid_lookup() {
        // Drive a lookup whose responses keep feeding fresh candidates and
        // check the α cap after every single state transition.
        let alpha = 3;
        let mut s = lookup(0, &[10, 20, 30, 40, 50], 100, alpha);
        let mut next_new = 1000u64;
        let mut round = 0;
        while !s.is_finished() && round < 50 {
            round += 1;
            let queries = s.next_queries();
            assert!(
                s.in_flight() <= alpha,
                "in_flight {} exceeds alpha after next_queries",
                s.in_flight()
            );
            if !queries.is_empty() {
                assert_eq!(
                    s.in_flight(),
                    alpha,
                    "next_queries tops the window back up to exactly alpha \
                     while untried candidates remain"
                );
            }
            for (i, c) in queries.iter().enumerate() {
                // Alternate: responses (bearing two new candidates each)
                // and failures.
                if i % 2 == 0 {
                    let fresh = vec![contact(next_new), contact(next_new + 1)];
                    next_new += 2;
                    s.on_response(&c.id, fresh);
                } else {
                    s.on_failure(&c.id);
                }
                assert!(
                    s.in_flight() <= alpha,
                    "in_flight {} exceeds alpha mid-round",
                    s.in_flight()
                );
            }
        }
        assert!(s.responded() > 0);
    }

    #[test]
    fn every_shortlist_member_failing_yields_empty_result() {
        let mut s = lookup(0, &[1, 2, 3, 4], 5, 2);
        let mut failed = 0;
        while !s.is_finished() {
            let queries = s.next_queries();
            assert!(!queries.is_empty(), "unfinished lookup must make progress");
            for c in queries {
                s.on_failure(&c.id);
                failed += 1;
            }
        }
        assert_eq!(failed, 4, "all four candidates were tried and failed");
        assert_eq!(s.responded(), 0);
        assert_eq!(s.result_hops(), 0, "no responder, no hop count");
        assert!(s.closest_responded(5).is_empty());
        assert!(s.next_queries().is_empty());
    }

    #[test]
    fn hop_depth_tracks_discovery_chain() {
        let mut s = lookup(0, &[100], 20, 1);
        let q = s.next_queries();
        assert_eq!(q, vec![contact(100)]);
        // Seed (hop 1) responds with a closer node -> that node is hop 2.
        s.on_response(&NodeId::from_u64(100, 32), vec![contact(4)]);
        let q = s.next_queries();
        assert_eq!(q, vec![contact(4)]);
        s.on_response(&NodeId::from_u64(4, 32), vec![contact(1)]);
        let q = s.next_queries();
        assert_eq!(q, vec![contact(1)]);
        // Hop-3 node is now the closest responder.
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        assert_eq!(s.result_hops(), 3);
        assert_eq!(s.messages_sent(), 3);
    }

    #[test]
    fn partition_seeds_is_disjoint_and_balanced() {
        let seeds: Vec<Contact> = (1..=7).map(contact).collect();
        let paths = partition_seeds(seeds.clone(), 3);
        assert_eq!(paths.len(), 3);
        // Round-robin: sizes differ by at most one, closest seeds spread
        // across paths.
        assert_eq!(paths[0].len(), 3);
        assert_eq!(paths[1].len(), 2);
        assert_eq!(paths[2].len(), 2);
        assert_eq!(paths[0][0], contact(1));
        assert_eq!(paths[1][0], contact(2));
        assert_eq!(paths[2][0], contact(3));
        // Disjoint: every seed appears in exactly one path.
        let mut all: Vec<Contact> = paths.into_iter().flatten().collect();
        all.sort_by_key(|c| c.addr.0);
        assert_eq!(all, seeds);
    }

    #[test]
    fn partition_seeds_handles_degenerate_inputs() {
        assert!(partition_seeds(Vec::new(), 3).is_empty());
        let one = partition_seeds(vec![contact(1)], 4);
        assert_eq!(one, vec![vec![contact(1)]], "one seed, one path");
        let d_zero = partition_seeds(vec![contact(1), contact(2)], 0);
        assert_eq!(d_zero.len(), 1, "d = 0 clamps to a single path");
        assert_eq!(d_zero[0].len(), 2);
    }

    #[test]
    fn value_found_ends_retrieve_lookups() {
        let mut s = LookupState::new(
            1,
            NodeId::from_u64(0, 32),
            LookupPurpose::Retrieve,
            NodeId::from_u64(u32::MAX as u64, 32),
            vec![contact(1), contact(2), contact(3)],
            &config(20, 1),
        );
        let _ = s.next_queries();
        assert!(!s.is_finished());
        s.on_response(&NodeId::from_u64(1, 32), vec![]);
        s.mark_value_found();
        assert!(s.value_found());
        assert!(s.is_finished(), "value hit terminates the lookup");
        assert!(s.next_queries().is_empty(), "no queries after the hit");
        assert_eq!(s.result_hops(), 1);
    }
}
