//! Per-node protocol state and request handling.

use crate::config::KademliaConfig;
use crate::contact::Contact;
use crate::id::NodeId;
use crate::lookup::LookupTable;
use crate::messages::{RequestKind, ResponseBody};
use crate::routing::RoutingTable;
use dessim::time::SimTime;
use std::collections::HashSet;

/// One simulated Kademlia node: identity, routing table, stored keys and
/// in-progress lookups.
///
/// Nodes are pure protocol state; all I/O (transport, timers) is owned by
/// [`crate::network::SimNetwork`], which calls into the node and sends
/// whatever needs sending.
#[derive(Clone, Debug)]
pub struct KademliaNode {
    /// This node's identity and address.
    pub contact: Contact,
    /// The node's routing table.
    pub routing: RoutingTable,
    /// Keys of data objects stored at this node via STORE.
    pub storage: HashSet<NodeId>,
    /// Whether the node is part of the network. Dead nodes silently drop
    /// everything — indistinguishable from a crashed node.
    pub alive: bool,
    /// Whether the node has been compromised by the attacker. Unlike a
    /// silent departure, a compromised node **keeps answering** protocol
    /// requests (mimicking honest behavior so it is never evicted and keeps
    /// occupying routing-table slots), but the paper's system model says it
    /// may drop all traffic at will — so it is excluded from the
    /// connectivity graph and all `κ` accounting
    /// ([`crate::snapshot::RoutingSnapshot`] skips it).
    pub compromised: bool,
    /// When the node joined the network.
    pub joined_at: SimTime,
    /// The bootstrap contact this node joined through. Kept as a recovery
    /// seed: if loss evicts every routing-table entry before the join
    /// completes (a real possibility at `s = 1` under heavy loss), the
    /// next lookup re-seeds from the bootstrap — the overlay equivalent of
    /// a deployed node retrying its configured bootstrap list.
    pub bootstrap: Option<Contact>,
    /// In-progress lookups, in insertion order (see [`LookupTable`]).
    pub lookups: LookupTable,
}

impl KademliaNode {
    /// Creates an alive node with an empty routing table.
    pub fn new(contact: Contact, config: &KademliaConfig, now: SimTime) -> Self {
        KademliaNode {
            contact,
            routing: RoutingTable::new(contact.id, config),
            // Reserved headroom: STORE traffic grows this set from inside
            // the event loop, and a resize there is the only allocation
            // the data plane would otherwise make. 64 slots absorb hours
            // of simulated traffic at the paper's store rates before the
            // first resize.
            storage: HashSet::with_capacity(64),
            alive: true,
            compromised: false,
            joined_at: now,
            bootstrap: None,
            lookups: LookupTable::new(),
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.contact.id
    }

    /// Whether the node counts as an honest participant of the overlay:
    /// alive and not compromised. Exactly the nodes that become vertices of
    /// the connectivity graph.
    pub fn participates(&self) -> bool {
        self.alive && !self.compromised
    }

    /// Handles an incoming request, updating local state, and produces the
    /// response body. The caller (network driver) has already verified the
    /// node is alive and recorded the requester in the routing table.
    pub fn handle_request(&mut self, kind: &RequestKind, k: usize) -> ResponseBody {
        let mut buf = Vec::new();
        self.handle_request_with(kind, k, &mut buf)
    }

    /// [`KademliaNode::handle_request`] with a caller-provided contact
    /// buffer. When the response body carries contacts (FIND_NODE, or a
    /// FIND_VALUE miss), the buffer is filled and *taken* into the body;
    /// otherwise it is left untouched so the caller can recycle it — the
    /// allocation-free path the simulator's buffer pool uses.
    pub fn handle_request_with(
        &mut self,
        kind: &RequestKind,
        k: usize,
        buf: &mut Vec<Contact>,
    ) -> ResponseBody {
        match kind {
            RequestKind::Ping => ResponseBody::Pong,
            RequestKind::FindNode(target) => {
                self.routing.closest_into(target, k, buf);
                ResponseBody::Nodes(std::mem::take(buf))
            }
            RequestKind::Store(key) => {
                self.storage.insert(*key);
                ResponseBody::StoreOk
            }
            RequestKind::FindValue(key) => {
                // A compromised node keeps mimicking honest *routing*
                // behavior (so it is never evicted — the eclipse
                // mechanics), but **withholds stored values**: the paper's
                // system model lets it drop traffic at will, and denying
                // retrievals is exactly the service-level attack the
                // dissemination-durability probe measures.
                if !self.compromised && self.storage.contains(key) {
                    ResponseBody::Value {
                        found: true,
                        nodes: Vec::new(),
                    }
                } else {
                    self.routing.closest_into(key, k, buf);
                    ResponseBody::Value {
                        found: false,
                        nodes: std::mem::take(buf),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::NodeAddr;

    fn node() -> KademliaNode {
        let config = KademliaConfig::builder()
            .bits(32)
            .k(2)
            .build()
            .expect("valid");
        KademliaNode::new(
            Contact::new(NodeId::from_u64(0, 32), NodeAddr(0)),
            &config,
            SimTime::ZERO,
        )
    }

    #[test]
    fn ping_pongs() {
        let mut n = node();
        assert_eq!(n.handle_request(&RequestKind::Ping, 2), ResponseBody::Pong);
    }

    #[test]
    fn find_node_returns_closest() {
        let mut n = node();
        for v in [1u64, 9, 200] {
            n.routing.offer(
                Contact::new(NodeId::from_u64(v, 32), NodeAddr(v as u32)),
                SimTime::ZERO,
            );
        }
        let body = n.handle_request(&RequestKind::FindNode(NodeId::from_u64(8, 32)), 2);
        match body {
            ResponseBody::Nodes(nodes) => {
                assert_eq!(nodes.len(), 2);
                assert_eq!(nodes[0].addr, NodeAddr(9)); // distance 1
                assert_eq!(nodes[1].addr, NodeAddr(1)); // distance 9
            }
            other => panic!("expected Nodes, got {other:?}"),
        }
    }

    #[test]
    fn store_persists_key() {
        let mut n = node();
        let key = NodeId::from_u64(77, 32);
        assert_eq!(
            n.handle_request(&RequestKind::Store(key), 2),
            ResponseBody::StoreOk
        );
        assert!(n.storage.contains(&key));
    }

    #[test]
    fn new_node_is_alive_and_empty() {
        let n = node();
        assert!(n.alive);
        assert_eq!(n.routing.contact_count(), 0);
        assert!(n.lookups.is_empty());
    }
}
