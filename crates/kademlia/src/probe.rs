//! The dissemination-durability probe: is stored data still reachable?
//!
//! The paper's dissemination procedure stores each object on the `k`
//! closest nodes and argues (via connection resilience) about whether that
//! replica set stays reachable. This probe measures it directly at the
//! service level: [`DurabilityProbe::store_round`] disseminates fresh
//! objects from random honest nodes, and [`DurabilityProbe::probe_round`]
//! later issues FIND_VALUE retrievals ([`SimNetwork::start_find_value`])
//! for every tracked key from fresh random honest origins. Retrieval
//! outcomes surface through the network's telemetry sink as
//! [`kad_telemetry::LookupRecord`]s with purpose `Retrieve` — the
//! "fraction of stored objects still retrievable" series the service
//! experiments plot next to `κ(t)`.
//!
//! Retrievals are *network-only* on purpose: the probing origin never
//! consults its own storage, because the question is whether **someone
//! else** can still fetch the object through the overlay. Compromised
//! nodes keep answering routing queries but withhold values (see
//! [`crate::node::KademliaNode::handle_request`]), so an eclipse attack on
//! a key's neighborhood degrades retrievability exactly as the system
//! model predicts.
//!
//! The probe is deliberately oblivious to the simulation's internals — it
//! only uses the public `SimNetwork` API plus its own RNG, so experiment
//! harnesses can schedule store/probe rounds on any grid they like.

use crate::id::NodeId;
use crate::network::SimNetwork;
use crate::NodeAddr;
use rand::rngs::SmallRng;
use rand::Rng;

/// Tracks disseminated objects and re-probes their retrievability.
#[derive(Clone, Debug, Default)]
pub struct DurabilityProbe {
    keys: Vec<NodeId>,
}

impl DurabilityProbe {
    /// Creates a probe tracking no objects yet.
    pub fn new() -> Self {
        DurabilityProbe::default()
    }

    /// The keys disseminated so far, in store order.
    pub fn keys(&self) -> &[NodeId] {
        &self.keys
    }

    /// Disseminates `count` fresh random objects, each from a random
    /// *honest* alive node, and tracks their keys. Returns how many
    /// disseminations were actually started (0 when no honest node is
    /// left).
    pub fn store_round(&mut self, net: &mut SimNetwork, count: usize, rng: &mut SmallRng) -> usize {
        let bits = net.config().bits;
        // One honest-set scan per round: starting stores/retrievals never
        // changes liveness or compromise state, so the set is loop-stable.
        let honest = net.honest_addrs();
        if honest.is_empty() {
            return 0;
        }
        let mut started = 0;
        for _ in 0..count {
            let origin = honest[rng.random_range(0..honest.len())];
            let key = NodeId::random(rng, bits);
            if net.start_store(origin, key).is_some() {
                self.keys.push(key);
                started += 1;
            }
        }
        started
    }

    /// Issues one FIND_VALUE retrieval per tracked key, each from a fresh
    /// random honest origin. Returns the number of retrievals started.
    /// Outcomes arrive through the network's telemetry sink.
    pub fn probe_round(&self, net: &mut SimNetwork, rng: &mut SmallRng) -> usize {
        // d = 1 degrades to a plain FIND_VALUE per key — one shared loop
        // keeps the single- and disjoint-path columns apples-to-apples.
        self.probe_round_disjoint(net, 1, rng)
    }

    /// Like [`DurabilityProbe::probe_round`], but each retrieval runs as
    /// a **disjoint-path** lookup with `d` independent paths
    /// ([`SimNetwork::start_find_value_disjoint`]): the retrieval
    /// succeeds if any path reaches an honest holder, countering
    /// value-withholding compromised nodes on the primary path. Outcomes
    /// arrive as [`kad_telemetry::TracePurpose::RetrieveDisjoint`]
    /// records, so harnesses can report single- and disjoint-path
    /// retrievability side by side from the same run.
    pub fn probe_round_disjoint(
        &self,
        net: &mut SimNetwork,
        d: usize,
        rng: &mut SmallRng,
    ) -> usize {
        let honest = net.honest_addrs();
        if honest.is_empty() {
            return 0;
        }
        let mut started = 0;
        for &key in &self.keys {
            let origin = honest[rng.random_range(0..honest.len())];
            if net.start_find_value_disjoint(origin, key, d).is_some() {
                started += 1;
            }
        }
        started
    }

    /// Ground-truth retrievability: the number of tracked keys held by at
    /// least one *honest alive* node. The protocol-level probe can only do
    /// worse than this oracle (it must also route to a holder); tests use
    /// the gap to bound routing-layer losses.
    pub fn oracle_retrievable(&self, net: &SimNetwork) -> usize {
        let honest: Vec<NodeAddr> = net.honest_addrs();
        self.keys
            .iter()
            .filter(|key| honest.iter().any(|&a| net.node(a).storage.contains(key)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KademliaConfig;
    use dessim::latency::LatencyModel;
    use dessim::time::{SimDuration, SimTime};
    use dessim::transport::Transport;
    use kad_telemetry::{LookupOutcome, TracePurpose, VecSink};
    use rand::SeedableRng;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn build_network(n: usize, k: usize, seed: u64) -> SimNetwork {
        let config = KademliaConfig::builder()
            .bits(32)
            .k(k)
            .staleness_limit(1)
            .build()
            .expect("valid");
        let transport = Transport::lossless(LatencyModel::Constant(SimDuration::from_millis(10)));
        let mut net = SimNetwork::new(config, transport, seed);
        let mut prev = None;
        for i in 0..n {
            let addr = net.spawn_node();
            net.join(addr, prev);
            prev = Some(addr);
            net.run_until(SimTime::from_secs((i as u64 + 1) * 10));
        }
        net.run_until(SimTime::from_minutes(30));
        net
    }

    #[test]
    fn stored_objects_are_retrievable_on_a_healthy_network() {
        let mut net = build_network(16, 4, 31);
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        let mut rng = SmallRng::seed_from_u64(7);
        let mut probe = DurabilityProbe::new();
        assert_eq!(probe.store_round(&mut net, 5, &mut rng), 5);
        assert_eq!(probe.keys().len(), 5);
        net.run_until(net.now() + SimDuration::from_secs(60));
        assert_eq!(probe.oracle_retrievable(&net), 5, "all objects stored");
        assert_eq!(probe.probe_round(&mut net, &mut rng), 5);
        net.run_until(net.now() + SimDuration::from_secs(60));
        let records = sink.borrow();
        let retrieves: Vec<_> = records
            .records
            .iter()
            .filter(|r| r.purpose == TracePurpose::Retrieve)
            .collect();
        assert_eq!(retrieves.len(), 5);
        assert!(
            retrieves
                .iter()
                .all(|r| r.outcome == LookupOutcome::ValueFound),
            "healthy lossless overlay retrieves everything: {retrieves:?}"
        );
    }

    #[test]
    fn eclipsing_the_replica_set_defeats_retrieval() {
        let mut net = build_network(16, 3, 32);
        let sink = Rc::new(RefCell::new(VecSink::default()));
        net.set_telemetry_sink(Box::new(Rc::clone(&sink)));
        let mut rng = SmallRng::seed_from_u64(9);
        let mut probe = DurabilityProbe::new();
        probe.store_round(&mut net, 1, &mut rng);
        net.run_until(net.now() + SimDuration::from_secs(60));
        // Compromise every holder of the key: values are withheld even
        // though the nodes keep answering routing queries.
        let key = probe.keys()[0];
        let holders: Vec<NodeAddr> = net
            .alive_addrs()
            .into_iter()
            .filter(|&a| net.node(a).storage.contains(&key))
            .collect();
        assert!(!holders.is_empty());
        for addr in holders {
            net.compromise_node(addr);
        }
        assert_eq!(probe.oracle_retrievable(&net), 0, "no honest holder left");
        probe.probe_round(&mut net, &mut rng);
        net.run_until(net.now() + SimDuration::from_secs(60));
        let records = sink.borrow();
        let outcome = records
            .records
            .iter()
            .rev()
            .find(|r| r.purpose == TracePurpose::Retrieve)
            .expect("probe emitted a retrieve record")
            .outcome;
        assert_eq!(outcome, LookupOutcome::ValueMissing);
    }

    #[test]
    fn probe_survives_an_empty_network() {
        let config = KademliaConfig::builder().bits(32).k(4).build().unwrap();
        let mut net = SimNetwork::new(config, Transport::default(), 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut probe = DurabilityProbe::new();
        assert_eq!(probe.store_round(&mut net, 3, &mut rng), 0);
        assert_eq!(probe.probe_round(&mut net, &mut rng), 0);
        assert_eq!(probe.oracle_retrievable(&net), 0);
    }
}
