//! Kademlia identifiers and the XOR metric.
//!
//! Every node and data object carries a `b`-bit identifier; the distance
//! between two identifiers is their bitwise XOR interpreted as an integer
//! (paper, Section 4.1). The paper evaluates `b = 160` (the Kademlia
//! default) and `b = 80`; identifiers are stored in a fixed 160-bit buffer
//! with the upper bits zeroed for smaller `b`.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bytes backing an identifier (160 bits).
pub const ID_BYTES: usize = 20;

/// Maximum supported identifier bit-length.
pub const MAX_BITS: u16 = (ID_BYTES * 8) as u16;

/// A `b`-bit Kademlia identifier.
///
/// Stored big-endian in a 160-bit buffer; only the low `b` bits are ever
/// non-zero. The bit-length is a property of the *network* (all ids in one
/// network share it), so it is carried by [`crate::config::KademliaConfig`]
/// rather than by every id.
///
/// # Example
///
/// ```
/// use kademlia::id::NodeId;
///
/// let a = NodeId::from_u64(0b1010, 8);
/// let b = NodeId::from_u64(0b0110, 8);
/// let d = a.distance(&b);
/// assert_eq!(d.to_u64(), 0b1100);
/// assert_eq!(d.bucket_index(), Some(3)); // floor(log2(12))
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId([u8; ID_BYTES]);

/// XOR distance between two identifiers. Ordered as a big-endian integer.
///
/// Stored as three big-endian-decoded machine words (`hi` = bits 159..=96,
/// `mid` = bits 95..=32, `lo` = bits 31..=0) rather than raw bytes:
/// distance comparisons are the simulator's hottest instruction stream
/// (every shortlist merge and closest-contact sort), and the word form
/// makes each one plain integer compares with no byte-swapping loads. The
/// derived field-order comparison is exactly big-endian integer order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Distance {
    hi: u64,
    mid: u64,
    lo: u32,
}

/// The 160-bit buffer as three big-endian machine words. Comparing words
/// beats the derived byte-array comparison (a `memcmp` call per compare) on
/// the simulator's hottest paths — shortlist merges and closest-contact
/// sorts are all `Distance` comparisons.
#[inline]
fn words(bytes: &[u8; ID_BYTES]) -> (u64, u64, u32) {
    (
        u64::from_be_bytes(bytes[0..8].try_into().expect("8 bytes")),
        u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes")),
        u32::from_be_bytes(bytes[16..20].try_into().expect("4 bytes")),
    )
}

impl Ord for NodeId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        words(&self.0).cmp(&words(&other.0))
    }
}

impl PartialOrd for NodeId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl NodeId {
    /// The all-zero identifier.
    pub const ZERO: NodeId = NodeId([0; ID_BYTES]);

    /// Creates an id from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if a bit above `bits` is set — ids must live inside their
    /// network's id space.
    pub fn from_bytes(bytes: [u8; ID_BYTES], bits: u16) -> Self {
        let id = NodeId(bytes);
        assert!(id.fits(bits), "id has bits above position {bits}");
        id
    }

    /// Creates an id from a `u64`, for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit into `bits` (or `bits > 160`).
    pub fn from_u64(value: u64, bits: u16) -> Self {
        assert!(bits <= MAX_BITS, "bits out of range");
        assert!(
            bits >= 64 || value < (1u64 << bits),
            "value does not fit into {bits} bits"
        );
        let mut bytes = [0u8; ID_BYTES];
        bytes[ID_BYTES - 8..].copy_from_slice(&value.to_be_bytes());
        NodeId(bytes)
    }

    /// Draws a uniformly random `bits`-bit identifier.
    ///
    /// The paper derives ids from a cryptographic hash "with the goal of
    /// equal distribution of identifiers in the identifier space"; sampling
    /// uniformly at random achieves exactly that distribution directly.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or exceeds [`MAX_BITS`].
    pub fn random<R: Rng + ?Sized>(rng: &mut R, bits: u16) -> Self {
        assert!(bits > 0 && bits <= MAX_BITS, "bits out of range");
        let mut bytes = [0u8; ID_BYTES];
        rng.fill(&mut bytes[..]);
        mask_to_bits(&mut bytes, bits);
        NodeId(bytes)
    }

    /// XOR distance to another identifier.
    pub fn distance(&self, other: &NodeId) -> Distance {
        let (ah, am, al) = words(&self.0);
        let (bh, bm, bl) = words(&other.0);
        Distance {
            hi: ah ^ bh,
            mid: am ^ bm,
            lo: al ^ bl,
        }
    }

    /// Index of the k-bucket that `other` falls into relative to `self`:
    /// the bucket `i` with `2^i <= dist < 2^(i+1)`. `None` when the ids are
    /// equal (a node never stores itself).
    pub fn bucket_index_of(&self, other: &NodeId) -> Option<usize> {
        self.distance(other).bucket_index()
    }

    /// Draws a random id inside bucket `index` relative to `self`, i.e. an
    /// id whose distance to `self` lies in `[2^index, 2^(index+1))`. Used by
    /// the 60-minute bucket refresh.
    ///
    /// # Panics
    ///
    /// Panics if `index >= bits`.
    pub fn random_in_bucket<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        index: usize,
        bits: u16,
    ) -> NodeId {
        assert!((index as u16) < bits, "bucket index out of range");
        // Distance must have bit `index` set and bits above `index` clear:
        // copy own prefix above `index`, flip bit `index`, randomize below.
        let mut bytes = self.0;
        flip_bit(&mut bytes, index);
        for bit in 0..index {
            if rng.random_bool(0.5) {
                flip_bit(&mut bytes, bit);
            } else {
                // Keep draw count independent of current contents.
            }
        }
        NodeId(bytes)
    }

    /// Raw big-endian bytes.
    pub fn as_bytes(&self) -> &[u8; ID_BYTES] {
        &self.0
    }

    /// Whether all set bits are below position `bits`.
    pub fn fits(&self, bits: u16) -> bool {
        let mut probe = self.0;
        mask_to_bits(&mut probe, bits);
        probe == self.0
    }
}

impl Distance {
    /// The zero distance.
    pub const ZERO: Distance = Distance {
        hi: 0,
        mid: 0,
        lo: 0,
    };

    /// Position of the most significant set bit (`floor(log2(d))`), which
    /// is exactly the k-bucket index. `None` for the zero distance.
    pub fn bucket_index(&self) -> Option<usize> {
        // Word-wise msb scan: three `leading_zeros` (single instructions)
        // instead of a 20-byte loop.
        if self.hi != 0 {
            Some(159 - self.hi.leading_zeros() as usize)
        } else if self.mid != 0 {
            Some(95 - self.mid.leading_zeros() as usize)
        } else if self.lo != 0 {
            Some(31 - self.lo.leading_zeros() as usize)
        } else {
            None
        }
    }

    /// The distance as `u64`, saturating if it does not fit. Convenient in
    /// tests with small id spaces.
    pub fn to_u64(&self) -> u64 {
        if self.hi != 0 || self.mid > u64::from(u32::MAX) {
            return u64::MAX;
        }
        (self.mid << 32) | u64::from(self.lo)
    }

    /// Whether this is the zero distance (identical ids).
    pub fn is_zero(&self) -> bool {
        self.hi == 0 && self.mid == 0 && self.lo == 0
    }

    /// The bit at position `pos`, counting from the least significant bit
    /// (`pos = 0`). Positions at or above the id width are zero. Diversity
    /// policies read the refinement bits just below a bucket's leading bit
    /// through this accessor.
    pub fn bit(&self, pos: usize) -> bool {
        if pos < 32 {
            (self.lo >> pos) & 1 == 1
        } else if pos < 96 {
            (self.mid >> (pos - 32)) & 1 == 1
        } else if pos < 160 {
            (self.hi >> (pos - 96)) & 1 == 1
        } else {
            false
        }
    }
}

fn mask_to_bits(bytes: &mut [u8; ID_BYTES], bits: u16) {
    let bits = bits as usize;
    for (i, byte) in bytes.iter_mut().enumerate() {
        let byte_pos = ID_BYTES - 1 - i; // significance of this byte
        let low_bit = byte_pos * 8;
        if low_bit + 8 <= bits {
            continue; // fully inside the id space
        }
        if low_bit >= bits {
            *byte = 0;
        } else {
            let keep = bits - low_bit;
            *byte &= (1u16 << keep).wrapping_sub(1) as u8;
        }
    }
}

fn flip_bit(bytes: &mut [u8; ID_BYTES], bit: usize) {
    let byte = ID_BYTES - 1 - bit / 8;
    bytes[byte] ^= 1 << (bit % 8);
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({self})")
    }
}

impl fmt::Display for NodeId {
    /// Short hex form: leading zero bytes elided, at least one byte shown.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first = self.0.iter().position(|&b| b != 0).unwrap_or(ID_BYTES - 1);
        for b in &self.0[first..] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Same short hex form as before the word-packed representation:
        // leading zero bytes elided, at least one byte shown.
        let mut bytes = [0u8; ID_BYTES];
        bytes[0..8].copy_from_slice(&self.hi.to_be_bytes());
        bytes[8..16].copy_from_slice(&self.mid.to_be_bytes());
        bytes[16..20].copy_from_slice(&self.lo.to_be_bytes());
        let first = bytes.iter().position(|&b| b != 0).unwrap_or(ID_BYTES - 1);
        write!(f, "Distance(")?;
        for b in &bytes[first..] {
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn distance_bits_match_the_u64_value() {
        let d = NodeId::from_u64(0b1011_0100, 16).distance(&NodeId::ZERO);
        for pos in 0..16 {
            assert_eq!(d.bit(pos), (0b1011_0100 >> pos) & 1 == 1, "bit {pos}");
        }
        assert!(!d.bit(ID_BYTES * 8), "out-of-range bits read as zero");
        assert!(!d.bit(ID_BYTES * 8 + 40));
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = NodeId::from_u64(0xdead, 16);
        let b = NodeId::from_u64(0xbeef, 16);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!(a.distance(&a).is_zero());
    }

    #[test]
    fn xor_triangle_inequality_holds() {
        // d(x,z) <= d(x,y) + d(y,z) — XOR is a metric.
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..500 {
            let x = NodeId::random(&mut rng, 32);
            let y = NodeId::random(&mut rng, 32);
            let z = NodeId::random(&mut rng, 32);
            let dxz = x.distance(&z).to_u64();
            let dxy = x.distance(&y).to_u64();
            let dyz = y.distance(&z).to_u64();
            assert!(dxz <= dxy + dyz);
        }
    }

    #[test]
    fn bucket_index_is_log2_of_distance() {
        let base = NodeId::from_u64(0, 16);
        assert_eq!(base.bucket_index_of(&NodeId::from_u64(1, 16)), Some(0));
        assert_eq!(base.bucket_index_of(&NodeId::from_u64(2, 16)), Some(1));
        assert_eq!(base.bucket_index_of(&NodeId::from_u64(3, 16)), Some(1));
        assert_eq!(base.bucket_index_of(&NodeId::from_u64(4, 16)), Some(2));
        assert_eq!(
            base.bucket_index_of(&NodeId::from_u64(0x8000, 16)),
            Some(15)
        );
        assert_eq!(base.bucket_index_of(&base), None);
    }

    #[test]
    fn bucket_index_covers_id_space_halves() {
        // Highest bucket covers half the id space, next a quarter, etc.
        let mut rng = SmallRng::seed_from_u64(9);
        let own = NodeId::random(&mut rng, 32);
        let mut top = 0usize;
        let samples = 4000;
        for _ in 0..samples {
            let other = NodeId::random(&mut rng, 32);
            if let Some(31) = own.bucket_index_of(&other) {
                top += 1;
            }
        }
        let frac = top as f64 / samples as f64;
        assert!((frac - 0.5).abs() < 0.05, "top bucket fraction {frac}");
    }

    #[test]
    fn random_respects_bit_length() {
        let mut rng = SmallRng::seed_from_u64(11);
        for bits in [1u16, 7, 8, 9, 80, 159, 160] {
            for _ in 0..50 {
                let id = NodeId::random(&mut rng, bits);
                assert!(id.fits(bits), "id {id} exceeds {bits} bits");
            }
        }
    }

    #[test]
    fn random_uses_full_space() {
        let mut rng = SmallRng::seed_from_u64(12);
        // With 8-bit ids and 200 draws we should see high and low values.
        let draws: Vec<u64> = (0..200)
            .map(|_| NodeId::random(&mut rng, 8).distance(&NodeId::ZERO).to_u64())
            .collect();
        assert!(draws.iter().any(|&v| v > 200));
        assert!(draws.iter().any(|&v| v < 56));
    }

    #[test]
    fn random_in_bucket_lands_in_bucket() {
        let mut rng = SmallRng::seed_from_u64(13);
        let own = NodeId::random(&mut rng, 80);
        for index in [0usize, 1, 5, 40, 79] {
            for _ in 0..50 {
                let target = own.random_in_bucket(&mut rng, index, 80);
                assert_eq!(
                    own.bucket_index_of(&target),
                    Some(index),
                    "target {target} missed bucket {index}"
                );
                assert!(target.fits(80));
            }
        }
    }

    #[test]
    fn from_u64_roundtrip() {
        let id = NodeId::from_u64(123_456, 32);
        assert_eq!(id.distance(&NodeId::ZERO).to_u64(), 123_456);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u64_rejects_oversized_values() {
        NodeId::from_u64(256, 8);
    }

    #[test]
    fn distance_ordering_is_big_endian() {
        let a = NodeId::from_u64(0x0100, 16).distance(&NodeId::ZERO);
        let b = NodeId::from_u64(0x00ff, 16).distance(&NodeId::ZERO);
        assert!(a > b);
    }

    #[test]
    fn display_is_compact_hex() {
        let id = NodeId::from_u64(0xabc, 16);
        assert_eq!(id.to_string(), "0abc");
        assert_eq!(NodeId::ZERO.to_string(), "00");
    }

    #[test]
    fn to_u64_saturates() {
        let big = NodeId::random(&mut SmallRng::seed_from_u64(3), 160);
        // Overwhelmingly likely to have a high bit set.
        if !big.fits(64) {
            assert_eq!(big.distance(&NodeId::ZERO).to_u64(), u64::MAX);
        }
    }
}
