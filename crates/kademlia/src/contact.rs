//! Contacts: the `(identifier, network address)` pairs stored in routing
//! tables.

use crate::id::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulated network address: a stable index into the simulation's node
/// table. Addresses are never reused, so a dead node's address stays dead —
/// exactly like the paper's model where a departed node silently stops
/// answering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeAddr(pub u32);

impl NodeAddr {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A routing-table contact: another node's identifier and address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Contact {
    /// The contact's Kademlia identifier.
    pub id: NodeId,
    /// Where messages to this contact are delivered.
    pub addr: NodeAddr,
}

impl Contact {
    /// Creates a contact.
    pub fn new(id: NodeId, addr: NodeAddr) -> Self {
        Contact { id, addr }
    }
}

impl fmt::Display for Contact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.id, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let c = Contact::new(NodeId::from_u64(0xff, 8), NodeAddr(3));
        assert_eq!(c.to_string(), "ff@#3");
        assert_eq!(NodeAddr(17).to_string(), "#17");
    }

    #[test]
    fn addr_index() {
        assert_eq!(NodeAddr(5).index(), 5);
    }
}
