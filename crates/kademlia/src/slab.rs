//! Generation-indexed slab storage (re-exported from `dessim`).
//!
//! The slab started life here as the allocation-free replacement for the
//! `HashMap<RpcId, PendingRpc>` side table; the implementation now lives
//! in [`dessim::slab`] so the event queue can share it for its payload
//! store. This module keeps the original path alive for callers.

pub use dessim::slab::GenSlab;
