//! Wire messages: the Kademlia RPC set.
//!
//! Kademlia's communication is dominated by two-way request/response
//! exchanges (the assumption behind the paper's Table 1 loss model), so the
//! message type is exactly a request or a response, each carrying the
//! sender's contact so receivers can update their routing tables.

use crate::contact::Contact;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// Correlates a response with its pending request.
pub type RpcId = u64;

/// Request payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Liveness probe.
    Ping,
    /// "Give me your closest contacts to `target`" — the lookup workhorse.
    FindNode(NodeId),
    /// Store a data object (identified by its key) at the receiver; the
    /// dissemination procedure sends this to the `k` closest nodes.
    Store(NodeId),
    /// "Give me the object for `key`, or your closest contacts to it" —
    /// the retrieval workhorse (FIND_VALUE). Holders answer
    /// [`ResponseBody::Value`] with `found = true`; everyone else behaves
    /// exactly like [`RequestKind::FindNode`].
    FindValue(NodeId),
}

/// Response payloads.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Answer to [`RequestKind::Ping`].
    Pong,
    /// Answer to [`RequestKind::FindNode`]: the receiver's `k` closest
    /// contacts to the target.
    Nodes(Vec<Contact>),
    /// Answer to [`RequestKind::Store`].
    StoreOk,
    /// Answer to [`RequestKind::FindValue`].
    Value {
        /// Whether the responder holds (and is willing to serve) the key.
        found: bool,
        /// The responder's closest contacts to the key when it does not
        /// serve the value (empty on a hit).
        nodes: Vec<Contact>,
    },
}

/// A simulated datagram.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// A request, awaiting a response within the RPC timeout.
    Request {
        /// Correlation id allocated by the sender.
        rpc_id: RpcId,
        /// The sender (receivers learn contacts from this field).
        from: Contact,
        /// What is being asked.
        kind: RequestKind,
    },
    /// A response to an earlier request.
    Response {
        /// Correlation id copied from the request.
        rpc_id: RpcId,
        /// The responder.
        from: Contact,
        /// The answer.
        body: ResponseBody,
    },
}

impl Message {
    /// The contact embedded in the message (sender).
    pub fn sender(&self) -> &Contact {
        match self {
            Message::Request { from, .. } | Message::Response { from, .. } => from,
        }
    }

    /// The correlation id.
    pub fn rpc_id(&self) -> RpcId {
        match self {
            Message::Request { rpc_id, .. } | Message::Response { rpc_id, .. } => *rpc_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::NodeAddr;

    #[test]
    fn accessors() {
        let c = Contact::new(NodeId::from_u64(1, 8), NodeAddr(0));
        let m = Message::Request {
            rpc_id: 42,
            from: c,
            kind: RequestKind::Ping,
        };
        assert_eq!(m.rpc_id(), 42);
        assert_eq!(m.sender(), &c);
        let r = Message::Response {
            rpc_id: 42,
            from: c,
            body: ResponseBody::Pong,
        };
        assert_eq!(r.rpc_id(), 42);
    }
}
