//! Protocol configuration: the four parameters the paper studies plus
//! simulation timing knobs.

use crate::id::MAX_BITS;
use dessim::latency::LatencyModel;
use dessim::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which buckets a node refreshes at each refresh tick.
///
/// The paper refreshes *every* bucket: "a node randomly generates an id
/// from the id range of each k-bucket and performs lookup procedures for
/// these ids". With `b = 160` that is 160 lookups per node per hour, most
/// of which target distance ranges that provably contain no nodes (bucket
/// `i` holds `n·2^i/2^b` nodes in expectation). The laptop-scale harness
/// therefore offers [`RefreshPolicy::OccupiedWithMargin`], which refreshes
/// every bucket from slightly below the lowest occupied index upwards —
/// identical discovery dynamics on every range where nodes can exist, at a
/// fraction of the cost. The substitution is documented in DESIGN.md.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefreshPolicy {
    /// Refresh all `b` buckets (paper-faithful).
    #[default]
    AllBuckets,
    /// Refresh buckets from `lowest_occupied_index - margin` upwards.
    OccupiedWithMargin(usize),
}

/// Kademlia protocol parameters.
///
/// Defaults follow the original Kademlia paper, which the resilience paper
/// quotes: `b = 160`, `k = 20`, `α = 3`, `s = 5`. (The resilience paper's
/// churn scenarios with `loss = none` override `s` to 1; that is a scenario
/// decision, not a protocol default.)
///
/// # Example
///
/// ```
/// use kademlia::config::KademliaConfig;
///
/// let config = KademliaConfig::builder()
///     .k(10)
///     .alpha(5)
///     .staleness_limit(1)
///     .build()?;
/// assert_eq!(config.k, 10);
/// assert_eq!(config.bits, 160);
/// # Ok::<(), kademlia::config::ConfigError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KademliaConfig {
    /// Identifier bit-length `b` (paper: 160 and 80).
    pub bits: u16,
    /// Bucket size `k` — the maximum contacts per k-bucket (paper: 5, 10,
    /// 20, 30).
    pub k: usize,
    /// Request parallelism `α` — concurrent queries per lookup (paper: 3
    /// and 5).
    pub alpha: usize,
    /// Staleness limit `s` — consecutive failed communications before a
    /// contact is evicted (paper: 1 and 5).
    pub staleness_limit: u32,
    /// Interval between bucket refreshes (paper: 60 minutes).
    pub refresh_interval: SimDuration,
    /// How long a node waits for an RPC response before declaring failure.
    pub rpc_timeout: SimDuration,
    /// Upper bound on tracked lookup candidates, as a multiple of `k`.
    /// Bounds memory per lookup; 3 is generous (a lookup terminates once
    /// the `k` best candidates are exhausted).
    pub shortlist_factor: usize,
    /// Bucket-refresh coverage policy.
    pub refresh_policy: RefreshPolicy,
    /// Per-message simulated latency model the harness builds transports
    /// from (default: the documented 10–100 ms uniform window). Living on
    /// the config makes per-lookup latency a sweepable knob next to `α`
    /// and the RPC timeout — the load grid crosses them.
    pub latency: LatencyModel,
}

impl KademliaConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> KademliaConfigBuilder {
        KademliaConfigBuilder::new()
    }

    /// Maximum number of shortlist entries per lookup.
    pub fn shortlist_capacity(&self) -> usize {
        self.shortlist_factor.max(1) * self.k
    }
}

impl Default for KademliaConfig {
    fn default() -> Self {
        KademliaConfig {
            bits: 160,
            k: 20,
            alpha: 3,
            staleness_limit: 5,
            refresh_interval: SimDuration::from_minutes(60),
            rpc_timeout: SimDuration::from_secs(1),
            shortlist_factor: 3,
            refresh_policy: RefreshPolicy::AllBuckets,
            latency: LatencyModel::default_uniform(),
        }
    }
}

/// Error returned when a configuration is inconsistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid kademlia config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`KademliaConfig`] (non-consuming, per C-BUILDER).
#[derive(Clone, Debug, Default)]
pub struct KademliaConfigBuilder {
    config: Option<KademliaConfig>,
}

impl KademliaConfigBuilder {
    /// Creates a builder seeded with the defaults.
    pub fn new() -> Self {
        KademliaConfigBuilder {
            config: Some(KademliaConfig::default()),
        }
    }

    fn config_mut(&mut self) -> &mut KademliaConfig {
        self.config.get_or_insert_with(KademliaConfig::default)
    }

    /// Sets the identifier bit-length `b`.
    pub fn bits(&mut self, bits: u16) -> &mut Self {
        self.config_mut().bits = bits;
        self
    }

    /// Sets the bucket size `k`.
    pub fn k(&mut self, k: usize) -> &mut Self {
        self.config_mut().k = k;
        self
    }

    /// Sets the request parallelism `α`.
    pub fn alpha(&mut self, alpha: usize) -> &mut Self {
        self.config_mut().alpha = alpha;
        self
    }

    /// Sets the staleness limit `s`.
    pub fn staleness_limit(&mut self, s: u32) -> &mut Self {
        self.config_mut().staleness_limit = s;
        self
    }

    /// Sets the bucket-refresh interval.
    pub fn refresh_interval(&mut self, interval: SimDuration) -> &mut Self {
        self.config_mut().refresh_interval = interval;
        self
    }

    /// Sets the RPC timeout.
    pub fn rpc_timeout(&mut self, timeout: SimDuration) -> &mut Self {
        self.config_mut().rpc_timeout = timeout;
        self
    }

    /// Sets the shortlist capacity factor.
    pub fn shortlist_factor(&mut self, factor: usize) -> &mut Self {
        self.config_mut().shortlist_factor = factor;
        self
    }

    /// Sets the bucket-refresh coverage policy.
    pub fn refresh_policy(&mut self, policy: RefreshPolicy) -> &mut Self {
        self.config_mut().refresh_policy = policy;
        self
    }

    /// Sets the per-message simulated latency model.
    pub fn latency(&mut self, latency: LatencyModel) -> &mut Self {
        self.config_mut().latency = latency;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is out of range: `bits`
    /// outside `1..=160`, `k = 0`, `α = 0`, `s = 0`, or a zero RPC timeout.
    pub fn build(&self) -> Result<KademliaConfig, ConfigError> {
        let config = self.config.unwrap_or_default();
        if config.bits == 0 || config.bits > MAX_BITS {
            return Err(ConfigError(format!(
                "bits must be in 1..={MAX_BITS}, got {}",
                config.bits
            )));
        }
        if config.k == 0 {
            return Err(ConfigError("k must be at least 1".into()));
        }
        if config.alpha == 0 {
            return Err(ConfigError("alpha must be at least 1".into()));
        }
        if config.staleness_limit == 0 {
            return Err(ConfigError("staleness limit must be at least 1".into()));
        }
        if config.rpc_timeout == SimDuration::ZERO {
            return Err(ConfigError("rpc timeout must be positive".into()));
        }
        if config.shortlist_factor == 0 {
            return Err(ConfigError("shortlist factor must be at least 1".into()));
        }
        if let LatencyModel::Uniform { min, max } = config.latency {
            if min > max {
                return Err(ConfigError(format!(
                    "latency window inverted: min {} ms > max {} ms",
                    min.as_millis(),
                    max.as_millis()
                )));
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_kademlia_paper() {
        let c = KademliaConfig::default();
        assert_eq!(c.bits, 160);
        assert_eq!(c.k, 20);
        assert_eq!(c.alpha, 3);
        assert_eq!(c.staleness_limit, 5);
        assert_eq!(c.refresh_interval, SimDuration::from_minutes(60));
    }

    #[test]
    fn builder_overrides() {
        let c = KademliaConfig::builder()
            .bits(80)
            .k(30)
            .alpha(5)
            .staleness_limit(1)
            .build()
            .expect("valid");
        assert_eq!((c.bits, c.k, c.alpha, c.staleness_limit), (80, 30, 5, 1));
    }

    #[test]
    fn builder_rejects_invalid() {
        assert!(KademliaConfig::builder().bits(0).build().is_err());
        assert!(KademliaConfig::builder().bits(161).build().is_err());
        assert!(KademliaConfig::builder().k(0).build().is_err());
        assert!(KademliaConfig::builder().alpha(0).build().is_err());
        assert!(KademliaConfig::builder()
            .staleness_limit(0)
            .build()
            .is_err());
        assert!(KademliaConfig::builder()
            .rpc_timeout(SimDuration::ZERO)
            .build()
            .is_err());
        assert!(KademliaConfig::builder()
            .shortlist_factor(0)
            .build()
            .is_err());
        assert!(KademliaConfig::builder()
            .latency(LatencyModel::Uniform {
                min: SimDuration::from_millis(50),
                max: SimDuration::from_millis(10),
            })
            .build()
            .is_err());
    }

    #[test]
    fn shortlist_capacity_scales_with_k() {
        let c = KademliaConfig::builder()
            .k(10)
            .shortlist_factor(3)
            .build()
            .unwrap();
        assert_eq!(c.shortlist_capacity(), 30);
    }

    #[test]
    fn error_display_is_informative() {
        let err = KademliaConfig::builder().k(0).build().unwrap_err();
        assert!(err.to_string().contains("k must be"));
    }
}
