//! A simulation-grade implementation of the Kademlia overlay protocol.
//!
//! This crate rebuilds the protocol layer the paper runs inside PeerSim
//! (Section 4.1): XOR-metric identifiers, k-bucket routing tables, the
//! iterative α-parallel lookup procedure, dissemination (STORE to the `k`
//! closest nodes), periodic bucket refresh, the staleness limit `s`, and a
//! churn-capable node lifecycle — all driven by the deterministic
//! event kernel from [`dessim`].
//!
//! The four protocol parameters studied by the paper appear verbatim in
//! [`config::KademliaConfig`]:
//!
//! * `b` — identifier bit-length ([`config::KademliaConfig::bits`]),
//! * `k` — bucket size ([`config::KademliaConfig::k`]),
//! * `α` — request parallelism ([`config::KademliaConfig::alpha`]),
//! * `s` — staleness limit ([`config::KademliaConfig::staleness_limit`]).
//!
//! # Example
//!
//! Build a 32-node network, let it stabilize, and dump the connectivity
//! snapshot:
//!
//! ```
//! use dessim::time::SimTime;
//! use kademlia::config::KademliaConfig;
//! use kademlia::network::SimNetwork;
//!
//! let config = KademliaConfig::builder().k(8).build().expect("valid");
//! let mut net = SimNetwork::new(config, Default::default(), 42);
//! let mut prev = None;
//! for _ in 0..32 {
//!     let addr = net.spawn_node();
//!     net.join(addr, prev);
//!     prev = Some(addr);
//!     net.run_until(net.now() + dessim::time::SimDuration::from_secs(30));
//! }
//! net.run_until(SimTime::from_minutes(90));
//! let snap = net.snapshot();
//! assert_eq!(snap.node_count(), 32);
//! assert!(snap.edge_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod config;
pub mod contact;
pub mod defense;
pub mod id;
pub mod lookup;
pub mod messages;
pub mod network;
pub mod node;
pub mod probe;
pub mod routing;
pub mod slab;
pub mod snapshot;

pub use config::KademliaConfig;
pub use contact::{Contact, NodeAddr};
pub use id::{Distance, NodeId};
pub use network::SimNetwork;
pub use probe::DurabilityProbe;
pub use snapshot::RoutingSnapshot;
