//! A single k-bucket.
//!
//! Buckets hold at most `k` contacts, ordered least-recently-seen first.
//! When a bucket is full, new contacts are **dropped** rather than evicting
//! a live entry — the behaviour the paper leans on when explaining why
//! large `α` hurts small-`k` networks ("those places are not available for
//! joining nodes"). Eviction happens only through the staleness limit `s`:
//! after `s` *consecutive* failed communications a contact is removed.

use crate::contact::Contact;
use crate::id::NodeId;
use dessim::time::SimTime;
use serde::{Deserialize, Serialize};

/// A bucket entry: a contact plus liveness bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketEntry {
    /// The stored contact.
    pub contact: Contact,
    /// Consecutive failed communication attempts.
    pub failures: u32,
    /// Last time any communication with this contact succeeded (or when it
    /// was inserted).
    pub last_seen: SimTime,
}

/// Outcome of offering a contact to a bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The contact was appended as a fresh entry.
    Inserted,
    /// The contact was already present; its liveness was refreshed.
    Refreshed,
    /// The bucket is full; the contact was dropped.
    Full,
}

/// A k-bucket: at most `k` contacts, least-recently-seen first.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KBucket {
    entries: Vec<BucketEntry>,
    k: usize,
}

impl KBucket {
    /// Creates an empty bucket with capacity `k`.
    pub fn new(k: usize) -> Self {
        KBucket {
            entries: Vec::new(),
            k,
        }
    }

    /// Number of stored contacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bucket holds no contacts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the bucket is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.k
    }

    /// Whether a contact with this id is stored.
    pub fn contains(&self, id: &NodeId) -> bool {
        self.position(id).is_some()
    }

    fn position(&self, id: &NodeId) -> Option<usize> {
        self.entries.iter().position(|e| e.contact.id == *id)
    }

    /// Offers a contact observed through *successful* communication.
    ///
    /// Present → moved to the most-recently-seen end with failures reset.
    /// Absent and space available → appended. Absent and full → dropped
    /// ([`InsertOutcome::Full`]).
    pub fn offer(&mut self, contact: Contact, now: SimTime) -> InsertOutcome {
        match self.position(&contact.id) {
            Some(pos) => {
                let mut entry = self.entries.remove(pos);
                entry.failures = 0;
                entry.last_seen = now;
                entry.contact = contact;
                self.entries.push(entry);
                InsertOutcome::Refreshed
            }
            None if self.entries.len() < self.k => {
                self.entries.push(BucketEntry {
                    contact,
                    failures: 0,
                    last_seen: now,
                });
                InsertOutcome::Inserted
            }
            None => InsertOutcome::Full,
        }
    }

    /// Records a successful communication with `id` (if stored).
    pub fn record_success(&mut self, id: &NodeId, now: SimTime) {
        if let Some(pos) = self.position(id) {
            let mut entry = self.entries.remove(pos);
            entry.failures = 0;
            entry.last_seen = now;
            self.entries.push(entry);
        }
    }

    /// Records a failed communication with `id`. Once the failure count
    /// reaches `staleness_limit` the contact is evicted; returns `true` in
    /// that case.
    pub fn record_failure(&mut self, id: &NodeId, staleness_limit: u32) -> bool {
        if let Some(pos) = self.position(id) {
            self.entries[pos].failures += 1;
            if self.entries[pos].failures >= staleness_limit {
                self.entries.remove(pos);
                return true;
            }
        }
        false
    }

    /// Removes a contact outright, returning `true` if it was present.
    pub fn remove(&mut self, id: &NodeId) -> bool {
        match self.position(id) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Iterates entries, least-recently-seen first.
    pub fn iter(&self) -> impl Iterator<Item = &BucketEntry> {
        self.entries.iter()
    }

    /// Iterates just the contacts.
    pub fn contacts(&self) -> impl Iterator<Item = &Contact> {
        self.entries.iter().map(|e| &e.contact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contact::NodeAddr;

    fn contact(v: u64) -> Contact {
        Contact::new(NodeId::from_u64(v, 32), NodeAddr(v as u32))
    }

    #[test]
    fn offer_inserts_until_full() {
        let mut b = KBucket::new(2);
        assert_eq!(b.offer(contact(1), SimTime::ZERO), InsertOutcome::Inserted);
        assert_eq!(b.offer(contact(2), SimTime::ZERO), InsertOutcome::Inserted);
        assert_eq!(b.offer(contact(3), SimTime::ZERO), InsertOutcome::Full);
        assert_eq!(b.len(), 2);
        assert!(b.is_full());
        assert!(!b.contains(&NodeId::from_u64(3, 32)));
    }

    #[test]
    fn offer_refreshes_existing() {
        let mut b = KBucket::new(2);
        b.offer(contact(1), SimTime::ZERO);
        b.offer(contact(2), SimTime::ZERO);
        // Re-offering 1 moves it to the most-recently-seen end.
        assert_eq!(
            b.offer(contact(1), SimTime::from_secs(5)),
            InsertOutcome::Refreshed
        );
        let order: Vec<u32> = b.contacts().map(|c| c.addr.0).collect();
        assert_eq!(order, vec![2, 1]);
        assert_eq!(
            b.iter().last().expect("entry").last_seen,
            SimTime::from_secs(5)
        );
    }

    #[test]
    fn staleness_limit_one_evicts_immediately() {
        let mut b = KBucket::new(4);
        b.offer(contact(1), SimTime::ZERO);
        assert!(b.record_failure(&NodeId::from_u64(1, 32), 1));
        assert!(b.is_empty());
    }

    #[test]
    fn staleness_limit_five_requires_five_consecutive_failures() {
        let mut b = KBucket::new(4);
        let id = NodeId::from_u64(1, 32);
        b.offer(contact(1), SimTime::ZERO);
        for _ in 0..4 {
            assert!(!b.record_failure(&id, 5));
        }
        // A success resets the counter — failures must be consecutive.
        b.record_success(&id, SimTime::from_secs(1));
        for _ in 0..4 {
            assert!(!b.record_failure(&id, 5));
        }
        assert!(b.record_failure(&id, 5));
        assert!(b.is_empty());
    }

    #[test]
    fn failure_on_absent_contact_is_noop() {
        let mut b = KBucket::new(2);
        assert!(!b.record_failure(&NodeId::from_u64(9, 32), 1));
    }

    #[test]
    fn eviction_frees_space_for_new_contacts() {
        let mut b = KBucket::new(1);
        b.offer(contact(1), SimTime::ZERO);
        assert_eq!(b.offer(contact(2), SimTime::ZERO), InsertOutcome::Full);
        b.record_failure(&NodeId::from_u64(1, 32), 1);
        assert_eq!(b.offer(contact(2), SimTime::ZERO), InsertOutcome::Inserted);
    }

    #[test]
    fn remove_works() {
        let mut b = KBucket::new(2);
        b.offer(contact(1), SimTime::ZERO);
        assert!(b.remove(&NodeId::from_u64(1, 32)));
        assert!(!b.remove(&NodeId::from_u64(1, 32)));
    }

    #[test]
    fn success_on_absent_contact_is_noop() {
        let mut b = KBucket::new(2);
        b.record_success(&NodeId::from_u64(1, 32), SimTime::ZERO);
        assert!(b.is_empty());
    }
}
