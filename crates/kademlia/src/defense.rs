//! The defense seam: pluggable routing-table hardening policies.
//!
//! The paper measures how fast an adversary destroys connectivity but
//! never asks what the overlay can do about it. This module is the
//! protocol-side seam for that missing chapter: a [`DefensePolicy`] is
//! installed on a [`crate::network::SimNetwork`]
//! ([`crate::network::SimNetwork::set_defense_policy`]) and reacts to the
//! same deterministic event stream the attack campaigns drive —
//!
//! * **insert time** — [`DefensePolicy::decide_insert`] vets every *new*
//!   routing-table insert (S/Kademlia-style prefix-diversity caps live
//!   here; it can also pick an overrepresented victim to replace);
//! * **probe ticks** — [`DefensePolicy::probe_interval`] /
//!   [`DefensePolicy::probe_targets`] drive periodic liveness PINGs so
//!   silently-departed contacts are evicted long before the next natural
//!   timeout would find them;
//! * **evictions** — [`DefensePolicy::repair_target`] turns a neighbor
//!   loss into a Ferretti-style local repair: a lookup toward the lost
//!   id's region pulls replacement contacts from surviving neighbors'
//!   closest sets.
//!
//! The trait lives in the protocol crate (like the [`kad_telemetry`]
//! sink seam) because its vocabulary is protocol state — buckets,
//! contacts, routing tables. The concrete policies — `NoDefense`,
//! `EvictUnresponsive`, `DiversifyBuckets`, `SelfHeal` — live above, in
//! the `kad_defense` crate, which re-exports this trait.
//!
//! Simulations that install no policy pay one `Option` discriminant check
//! per insert (pinned by the `perf_defense` bench).

use crate::bucket::KBucket;
use crate::contact::Contact;
use crate::id::NodeId;
use crate::routing::RoutingTable;
use dessim::time::{SimDuration, SimTime};

/// Verdict of [`DefensePolicy::decide_insert`] on a candidate contact
/// that is *not yet* stored in the target bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertDecision {
    /// Store the candidate under the bucket's normal rules (it may still
    /// be dropped if the bucket is full).
    Admit,
    /// Drop the candidate (diversity cap reached).
    Reject,
    /// Evict the named stored contact first, then insert the candidate —
    /// how a diversity policy frees a slot held by an overrepresented
    /// group when the bucket is full.
    Replace(NodeId),
}

/// A routing-table hardening policy (see the module docs). One instance
/// is shared by every node of the network, so implementations keep
/// per-call state only — all decisions are functions of the arguments.
pub trait DefensePolicy {
    /// Short label for CSV cells and series names.
    fn label(&self) -> &'static str;

    /// Vets the insert of `candidate` (not currently stored) into bucket
    /// `bucket_index` of the table owned by `own_id`. The default admits
    /// everything.
    fn decide_insert(
        &mut self,
        own_id: &NodeId,
        bucket: &KBucket,
        bucket_index: usize,
        candidate: &Contact,
    ) -> InsertDecision {
        let _ = (own_id, bucket, bucket_index, candidate);
        InsertDecision::Admit
    }

    /// Cadence of per-node liveness-probe ticks; `None` (the default)
    /// disables the tick entirely.
    fn probe_interval(&self) -> Option<SimDuration> {
        None
    }

    /// The contacts `table`'s owner should liveness-probe this tick
    /// (each becomes one PING whose timeout feeds the staleness limit).
    /// Only called when [`DefensePolicy::probe_interval`] is `Some`.
    fn probe_targets(&mut self, table: &RoutingTable, now: SimTime) -> Vec<Contact> {
        let _ = (table, now);
        Vec::new()
    }

    /// Called when `lost` was evicted from the table owned by `own_id`;
    /// returning a target launches a repair lookup toward it (surviving
    /// neighbors' closest sets refill the hole). The default does not
    /// repair.
    fn repair_target(&mut self, own_id: &NodeId, lost: &Contact) -> Option<NodeId> {
        let _ = (own_id, lost);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KademliaConfig;
    use crate::contact::NodeAddr;

    /// The trait's defaults are a complete no-op policy.
    struct Passive;

    impl DefensePolicy for Passive {
        fn label(&self) -> &'static str {
            "passive"
        }
    }

    #[test]
    fn default_methods_do_nothing() {
        let mut p = Passive;
        let config = KademliaConfig::builder().bits(16).k(2).build().unwrap();
        let own = NodeId::from_u64(0, 16);
        let table = RoutingTable::new(own, &config);
        let bucket = KBucket::new(2);
        let c = Contact::new(NodeId::from_u64(5, 16), NodeAddr(1));
        assert_eq!(p.decide_insert(&own, &bucket, 2, &c), InsertDecision::Admit);
        assert_eq!(p.probe_interval(), None);
        assert!(p.probe_targets(&table, SimTime::ZERO).is_empty());
        assert_eq!(p.repair_target(&own, &c), None);
        assert_eq!(p.label(), "passive");
    }
}
