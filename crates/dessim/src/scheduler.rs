//! The event queue at the heart of the simulation.

use crate::event::{Entry, EventId};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// A deterministic, cancellable discrete-event queue.
///
/// Events of type `E` are delivered in `(time, insertion-sequence)` order.
/// The queue owns the simulated clock: [`EventQueue::now`] advances to the
/// timestamp of each popped event and never moves backwards.
///
/// The driving loop lives with whoever owns the simulation state (see the
/// `kademlia` crate's `SimNetwork`), keeping this kernel free of callback
/// borrow gymnastics:
///
/// ```
/// use dessim::scheduler::EventQueue;
/// use dessim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "world");
/// q.schedule_at(SimTime::from_secs(1), "hello");
/// let mut words = Vec::new();
/// while let Some((_, w)) = q.pop() {
///     words.push(w);
/// }
/// assert_eq!(words, ["hello", "world"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far (cancelled events excluded).
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (cancelled-but-unpopped entries may
    /// be counted until they surface).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error:
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, id, event }));
        id
    }

    /// Schedules `event` after a delay relative to the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// had not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    /// Cancelled events are skipped silently.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "event queue went backwards");
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Pops the next event only if it fires strictly before `deadline`.
    /// The clock does not advance when `None` is returned, so the caller
    /// can later resume with a later deadline.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        loop {
            match self.heap.peek() {
                Some(Reverse(entry)) if entry.at < deadline => {
                    if self.cancelled.contains(&entry.id) {
                        let Reverse(entry) = self.heap.pop().expect("peeked entry");
                        self.cancelled.remove(&entry.id);
                        continue;
                    }
                    return self.pop();
                }
                _ => return None,
            }
        }
    }

    /// Timestamp of the next (non-cancelled) pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                Some(Reverse(entry)) => {
                    if self.cancelled.contains(&entry.id) {
                        let Reverse(entry) = self.heap.pop().expect("peeked entry");
                        self.cancelled.remove(&entry.id);
                        continue;
                    }
                    return Some(entry.at);
                }
                None => return None,
            }
        }
    }

    /// Advances the clock to `to` without delivering anything (used to
    /// align snapshot instants between event bursts).
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "cannot advance into the past");
        self.now = to;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), 3);
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        q.schedule_at(t, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let keep = q.schedule_at(SimTime::from_millis(1), "keep");
        let drop_ = q.schedule_at(SimTime::from_millis(2), "drop");
        assert!(q.cancel(drop_));
        assert!(!q.cancel(drop_), "double-cancel reports false");
        assert!(!q.cancel(crate::event::EventId(999)), "unknown id");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(50), 2);
        assert_eq!(
            q.pop_before(SimTime::from_millis(20)).map(|(_, e)| e),
            Some(1)
        );
        assert_eq!(q.pop_before(SimTime::from_millis(20)), None);
        // Clock stays put; event 2 still pending.
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(50)));
        assert_eq!(q.pop_before(SimTime::MAX).map(|(_, e)| e), Some(2));
    }

    #[test]
    fn pop_before_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_millis(1), "a");
        q.schedule_at(SimTime::from_millis(2), "b");
        q.cancel(a);
        assert_eq!(
            q.pop_before(SimTime::from_millis(10)).map(|(_, e)| e),
            Some("b")
        );
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "second");
        let (t, _) = q.pop().expect("second event");
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn delivered_counts_only_fired_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_millis(1), ());
        q.schedule_at(SimTime::from_millis(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_minutes(5));
        assert_eq!(q.now(), SimTime::from_minutes(5));
    }
}
