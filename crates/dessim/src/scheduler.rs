//! The event queue at the heart of the simulation.

use crate::event::{Entry, EventId};
use crate::slab::GenSlab;
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel window: events firing within this many milliseconds of the drain
/// cursor live in per-millisecond buckets; everything farther out waits in
/// the overflow heap. 16.4 simulated seconds comfortably covers message
/// latencies and RPC timeouts, the two event kinds that dominate traffic.
const WHEEL_SLOTS: usize = 1 << 14;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;

/// Entries per storage chunk (see [`Chunk`]).
const CHUNK: usize = 16;

/// Null link / index sentinel.
const NIL: u32 = u32::MAX;

/// A wheel bucket holds events for exactly one absolute millisecond, so an
/// entry needs no timestamp — only the id, which carries both the
/// deterministic tie-break sequence and the payload's slab key.
#[derive(Clone, Copy, Debug)]
struct WheelEntry {
    id: EventId,
}

/// Bucket storage: an unrolled linked list of fixed-size chunks drawn from
/// one shared pool.
///
/// Why not a `Vec` per bucket: with 16 k buckets, per-bucket capacity
/// ratchets up for a very long time as burst patterns drift across slots
/// (every slot eventually sees its record millisecond), which defeats a
/// zero-steady-state-allocation gate. Why not a plain linked list of
/// single entries: one pointer chase per event wrecks locality. Chunks of
/// 16 give contiguous scans with at most one link hop per 16 events, and
/// the pool converges as soon as the *total* pending-event high-water mark
/// is reached, independent of which buckets the load lands in.
#[derive(Clone, Debug)]
struct Chunk {
    entries: [WheelEntry; CHUNK],
    next: u32,
}

/// Per-bucket list state. Interior chunks are always full: only the head
/// chunk has consumed entries (`pos` of them) and only the tail chunk has
/// free space (it holds `fill` entries).
#[derive(Clone, Copy, Debug)]
struct Bucket {
    head: u32,
    tail: u32,
    /// Read offset in the head chunk.
    pos: u16,
    /// Write offset in the tail chunk.
    fill: u16,
    /// Events currently in the bucket.
    count: u32,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
    pos: 0,
    fill: 0,
    count: 0,
};

/// A deterministic, cancellable discrete-event queue.
///
/// Events of type `E` are delivered in `(time, insertion-sequence)` order.
/// The queue owns the simulated clock: [`EventQueue::now`] advances to the
/// timestamp of each popped event and never moves backwards.
///
/// The driving loop lives with whoever owns the simulation state (see the
/// `kademlia` crate's `SimNetwork`), keeping this kernel free of callback
/// borrow gymnastics:
///
/// ```
/// use dessim::scheduler::EventQueue;
/// use dessim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "world");
/// q.schedule_at(SimTime::from_secs(1), "hello");
/// let mut words = Vec::new();
/// while let Some((_, w)) = q.pop() {
///     words.push(w);
/// }
/// assert_eq!(words, ["hello", "world"]);
/// ```
///
/// # Implementation
///
/// Internally this is a timing wheel, not a binary heap: the clock is
/// millisecond-grained, so near-term events sit in per-millisecond buckets
/// and push/pop are O(1) appends and cursor advances instead of O(log n)
/// sifts over fat entries. Delivery order stays identical to a
/// `(time, id)`-ordered heap because:
///
/// * a bucket maps to exactly one absolute millisecond inside the wheel's
///   sliding window, and inserts append in scheduling order, so each
///   bucket is already sorted by id;
/// * events beyond the window sit in an overflow heap that is *compared at
///   pop time* — the wheel scan is bounded by the overflow head's
///   timestamp, and whichever of the two heads has the smaller
///   `(time, id)` fires first (no migration, no re-sorting);
/// * events scheduled behind the drain cursor — legal whenever the cursor
///   has scanned ahead of [`EventQueue::now`] through empty buckets — go
///   to a small "late" heap that is always drained first, which is correct
///   because everything in the wheel is at or after the cursor.
///
/// Payloads live in a [`GenSlab`] and bucket lists in a free-listed chunk
/// pool, so once those and the heaps reach the workload's high-water mark,
/// scheduling and delivery allocate nothing.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Per-millisecond buckets; `buckets[t & WHEEL_MASK]` holds the events
    /// for absolute millisecond `t` whenever
    /// `cursor <= t < cursor + WHEEL_SLOTS`.
    buckets: Vec<Bucket>,
    /// Shared chunk pool backing every bucket's list.
    chunks: Vec<Chunk>,
    /// Recycled chunk indices.
    free_chunks: Vec<u32>,
    /// Entries currently in the wheel (cancelled-but-unsurfaced included).
    wheel_len: usize,
    /// Absolute millisecond of the bucket currently being drained. Every
    /// wheel entry fires at or after this time.
    cursor: u64,
    /// Events at least one full window ahead of the cursor.
    overflow: BinaryHeap<Reverse<Entry>>,
    /// Events scheduled behind the cursor (always ahead of `now`).
    late: BinaryHeap<Reverse<Entry>>,
    store: GenSlab<E>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: vec![EMPTY_BUCKET; WHEEL_SLOTS],
            chunks: Vec::new(),
            free_chunks: Vec::new(),
            wheel_len: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            late: BinaryHeap::new(),
            store: GenSlab::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far (cancelled events excluded).
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending (cancelled-but-unpopped entries may
    /// be counted until they surface).
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len() + self.late.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grabs a chunk from the pool (recycled when available).
    fn alloc_chunk(&mut self) -> u32 {
        match self.free_chunks.pop() {
            Some(c) => {
                self.chunks[c as usize].next = NIL;
                c
            }
            None => {
                let c = u32::try_from(self.chunks.len()).expect("wheel chunk pool overflow");
                self.chunks.push(Chunk {
                    entries: [WheelEntry {
                        id: EventId { seq: 0, key: 0 },
                    }; CHUNK],
                    next: NIL,
                });
                c
            }
        }
    }

    /// Appends an event to its bucket (ids arrive in increasing order, so
    /// append preserves the bucket's id-sorted delivery order).
    fn bucket_push(&mut self, t: u64, id: EventId) {
        let slot = (t & WHEEL_MASK) as usize;
        let mut bucket = self.buckets[slot];
        if bucket.head == NIL {
            let c = self.alloc_chunk();
            bucket = Bucket {
                head: c,
                tail: c,
                pos: 0,
                fill: 0,
                count: 0,
            };
        } else if bucket.fill as usize == CHUNK {
            let c = self.alloc_chunk();
            self.chunks[bucket.tail as usize].next = c;
            bucket.tail = c;
            bucket.fill = 0;
        }
        self.chunks[bucket.tail as usize].entries[bucket.fill as usize] = WheelEntry { id };
        bucket.fill += 1;
        bucket.count += 1;
        self.buckets[slot] = bucket;
        self.wheel_len += 1;
    }

    /// Unlinks and returns the first event of the cursor's bucket. The
    /// caller checked `count > 0`.
    fn bucket_pop_head(&mut self) -> WheelEntry {
        let slot = (self.cursor & WHEEL_MASK) as usize;
        let mut bucket = self.buckets[slot];
        debug_assert!(bucket.count > 0, "bucket_pop_head on empty bucket");
        let entry = self.chunks[bucket.head as usize].entries[bucket.pos as usize];
        bucket.pos += 1;
        bucket.count -= 1;
        if bucket.count == 0 {
            // Head and tail are the same chunk; recycle it.
            self.free_chunks.push(bucket.head);
            bucket = EMPTY_BUCKET;
        } else if bucket.pos as usize == CHUNK {
            // Interior chunks are full: this one is exhausted.
            let next = self.chunks[bucket.head as usize].next;
            self.free_chunks.push(bucket.head);
            bucket.head = next;
            bucket.pos = 0;
        }
        self.buckets[slot] = bucket;
        self.wheel_len -= 1;
        entry
    }

    /// Id of the first event in the cursor's bucket (caller checked
    /// `count > 0`).
    fn bucket_head_id(&self) -> EventId {
        let bucket = &self.buckets[(self.cursor & WHEEL_MASK) as usize];
        self.chunks[bucket.head as usize].entries[bucket.pos as usize].id
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error:
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`EventQueue::now`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let key = self.store.insert(event);
        let id = EventId {
            seq: self.next_seq,
            key,
        };
        self.next_seq += 1;
        let t = at.as_millis();
        if t < self.cursor {
            self.late.push(Reverse(Entry { at, id }));
        } else if t - self.cursor < WHEEL_SLOTS as u64 {
            self.bucket_push(t, id);
        } else {
            self.overflow.push(Reverse(Entry { at, id }));
        }
        id
    }

    /// Schedules `event` after a delay relative to the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// had not yet fired (or been cancelled).
    ///
    /// Cancellation removes the payload from the slab immediately; the
    /// wheel/heap entry stays behind and is discarded when it surfaces,
    /// recognized by its now-stale generational key. Fired, cancelled and
    /// never-issued handles all miss the generation check, so no separate
    /// cancelled-id set is consulted on the delivery path.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.store.remove(id.key).is_some()
    }

    /// Advances the cursor to the wheel's head event without consuming it.
    /// Returns its absolute millisecond if it fires strictly before
    /// `limit`; `None` when no wheel event does. When the wheel is empty
    /// and `limit` is finite, the cursor jumps to `limit` — every bucket
    /// before it is known empty, so the next scan can start there.
    fn wheel_head(&mut self, limit: u64) -> Option<u64> {
        loop {
            if self.buckets[(self.cursor & WHEEL_MASK) as usize].count > 0 {
                return (self.cursor < limit).then_some(self.cursor);
            }
            if self.wheel_len == 0 {
                if limit != u64::MAX {
                    self.cursor = self.cursor.max(limit);
                }
                return None;
            }
            if self.cursor + 1 >= limit {
                return None;
            }
            self.cursor += 1;
        }
    }

    /// Shared pop core: delivers the next event firing strictly before
    /// `limit` (pass `u64::MAX` for "any").
    fn pop_limited(&mut self, limit: u64) -> Option<(SimTime, E)> {
        loop {
            // The late heap's times all precede everything in the wheel,
            // and its entries went there precisely because they fire
            // before anything the overflow heap can hold.
            if let Some(Reverse(head)) = self.late.peek() {
                if head.at.as_millis() >= limit {
                    return None;
                }
                let Reverse(e) = self.late.pop().expect("peeked entry");
                let Some(event) = self.store.remove(e.id.key) else {
                    continue; // cancelled
                };
                debug_assert!(e.at >= self.now, "event queue went backwards");
                self.now = e.at;
                self.popped += 1;
                return Some((e.at, event));
            }
            // The overflow head bounds the wheel scan; whichever head has
            // the smaller (time, id) fires.
            let over = self
                .overflow
                .peek()
                .map(|Reverse(e)| (e.at.as_millis(), e.id));
            let wheel_limit = match over {
                Some((t, _)) => limit.min(t.saturating_add(1)),
                None => limit,
            };
            let from_wheel = match (self.wheel_head(wheel_limit), over) {
                (Some(at), Some((t, oid))) => at < t || self.bucket_head_id() < oid,
                (Some(_), None) => true,
                (None, Some((t, _))) if t < limit => false,
                (None, _) => return None,
            };
            if from_wheel {
                let at = SimTime::from_millis(self.cursor);
                let entry = self.bucket_pop_head();
                let Some(event) = self.store.remove(entry.id.key) else {
                    continue; // cancelled
                };
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                self.popped += 1;
                return Some((at, event));
            }
            let Reverse(e) = self.overflow.pop().expect("peeked entry");
            // The wheel had nothing before this instant: the cursor can
            // start there so follow-up schedules land in buckets.
            self.cursor = self.cursor.max(e.at.as_millis());
            let Some(event) = self.store.remove(e.id.key) else {
                continue; // cancelled
            };
            debug_assert!(e.at >= self.now, "event queue went backwards");
            self.now = e.at;
            self.popped += 1;
            return Some((e.at, event));
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    /// Cancelled events are skipped silently.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_limited(u64::MAX)
    }

    /// Pops the next event only if it fires strictly before `deadline`.
    /// The clock does not advance when `None` is returned, so the caller
    /// can later resume with a later deadline.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        self.pop_limited(deadline.as_millis())
    }

    /// Timestamp of the next (non-cancelled) pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            if let Some(Reverse(head)) = self.late.peek() {
                if self.store.get(head.id.key).is_some() {
                    return Some(head.at);
                }
                self.late.pop();
                continue;
            }
            let over = self
                .overflow
                .peek()
                .map(|Reverse(e)| (e.at.as_millis(), e.id));
            let wheel_limit = over.map_or(u64::MAX, |(t, _)| t.saturating_add(1));
            let from_wheel = match (self.wheel_head(wheel_limit), over) {
                (Some(at), Some((t, oid))) => at < t || self.bucket_head_id() < oid,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            if from_wheel {
                if self.store.get(self.bucket_head_id().key).is_some() {
                    return Some(SimTime::from_millis(self.cursor));
                }
                self.bucket_pop_head();
                continue;
            }
            let (t, oid) = over.expect("checked above");
            if self.store.get(oid.key).is_some() {
                return Some(SimTime::from_millis(t));
            }
            self.overflow.pop();
        }
    }

    /// Advances the clock to `to` without delivering anything (used to
    /// align snapshot instants between event bursts).
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "cannot advance into the past");
        self.now = to;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), 3);
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule_at(t, "a");
        q.schedule_at(t, "b");
        q.schedule_at(t, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let keep = q.schedule_at(SimTime::from_millis(1), "keep");
        let drop_ = q.schedule_at(SimTime::from_millis(2), "drop");
        assert!(q.cancel(drop_));
        assert!(!q.cancel(drop_), "double-cancel reports false");
        assert!(
            !q.cancel(crate::event::EventId { seq: 999, key: 999 }),
            "unknown id"
        );
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(50), 2);
        assert_eq!(
            q.pop_before(SimTime::from_millis(20)).map(|(_, e)| e),
            Some(1)
        );
        assert_eq!(q.pop_before(SimTime::from_millis(20)), None);
        // Clock stays put; event 2 still pending.
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(50)));
        assert_eq!(q.pop_before(SimTime::MAX).map(|(_, e)| e), Some(2));
    }

    #[test]
    fn pop_before_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_millis(1), "a");
        q.schedule_at(SimTime::from_millis(2), "b");
        q.cancel(a);
        assert_eq!(
            q.pop_before(SimTime::from_millis(10)).map(|(_, e)| e),
            Some("b")
        );
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "second");
        let (t, _) = q.pop().expect("second event");
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn delivered_counts_only_fired_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_millis(1), ());
        q.schedule_at(SimTime::from_millis(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.delivered(), 1);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_minutes(5));
        assert_eq!(q.now(), SimTime::from_minutes(5));
    }

    #[test]
    fn far_future_events_cross_the_wheel_window() {
        // Refresh-style schedule: events much farther out than the wheel
        // window, interleaved with near-term traffic.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_minutes(60), "refresh");
        q.schedule_at(SimTime::from_millis(3), "near");
        q.schedule_at(SimTime::from_minutes(90), "later-refresh");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().map(|(_, e)| e), Some("near"));
        let (t, e) = q.pop().expect("refresh fires");
        assert_eq!((t, e), (SimTime::from_minutes(60), "refresh"));
        let (t, e) = q.pop().expect("later refresh fires");
        assert_eq!((t, e), (SimTime::from_minutes(90), "later-refresh"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_and_wheel_heads_interleave_by_id_at_equal_times() {
        // An overflow event and later direct inserts share a timestamp;
        // delivery must follow pure id order regardless of which structure
        // holds each event.
        let t = SimTime::from_millis(2 * WHEEL_SLOTS as u64 + 7);
        let mut q = EventQueue::new();
        q.schedule_at(t, 0u32); // overflow (beyond the window from cursor 0)
        q.schedule_at(t, 1); // overflow
        q.schedule_at(SimTime::from_millis(WHEEL_SLOTS as u64 + 50), 2); // overflow
        q.schedule_at(t, 3); // overflow
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        // The cursor advanced to event 2's time, so t is now in-window:
        // these go straight into t's bucket alongside the overflow copies.
        q.schedule_at(t, 4);
        q.schedule_at(t, 5);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn scheduling_behind_the_scanned_cursor_stays_ordered() {
        // pop_before scans far ahead through empty buckets without moving
        // `now`; a subsequent schedule at an earlier (but still future)
        // time must fire before anything later.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(1), "warm");
        q.pop();
        assert!(q.pop_before(SimTime::from_secs(30)).is_none());
        q.schedule_at(SimTime::from_millis(5), "late-sched");
        q.schedule_at(SimTime::from_secs(40), "far");
        assert_eq!(
            q.pop_before(SimTime::from_secs(60)),
            Some((SimTime::from_millis(5), "late-sched"))
        );
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        assert_eq!(q.now(), SimTime::from_secs(40));
    }

    #[test]
    fn cancelled_late_and_overflow_entries_are_skipped() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(1), "warm");
        q.pop();
        assert!(q.pop_before(SimTime::from_secs(20)).is_none());
        let late = q.schedule_at(SimTime::from_millis(7), "late");
        let far = q.schedule_at(SimTime::from_minutes(10), "far");
        q.cancel(late);
        q.cancel(far);
        q.schedule_at(SimTime::from_minutes(11), "kept");
        assert_eq!(q.peek_time(), Some(SimTime::from_minutes(11)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("kept"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn buckets_spanning_many_chunks_stay_fifo() {
        // One millisecond receiving far more events than a single chunk
        // holds (the timeout-burst shape): order must stay exact and the
        // chunk pool must recycle.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(99);
        for i in 0..100u32 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
        // Refill: the pool must serve the same load again without issue.
        let t2 = SimTime::from_millis(200);
        for i in 0..100u32 {
            q.schedule_at(t2, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    /// Model test: the wheel must deliver an arbitrary workload in exactly
    /// `(time, id)` order — the order a sorted list of entries produces.
    #[test]
    fn matches_reference_order_on_mixed_workload() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(42);
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, u64)> = Vec::new(); // (at_ms, seq)
        let mut pending: Vec<(EventId, u64, u64)> = Vec::new();
        let mut seq = 0u64;
        // Interleave bursts of scheduling (near, far and simultaneous
        // times), cancellations, and partial drains.
        for round in 0..200u64 {
            for _ in 0..rng.random_range(1..20) {
                let horizon = if rng.random_bool(0.1) {
                    400_000 // beyond the wheel window
                } else {
                    5_000
                };
                let at = q.now().as_millis() + rng.random_range(0..horizon);
                let id = q.schedule_at(SimTime::from_millis(at), seq);
                pending.push((id, at, seq));
                seq += 1;
            }
            if rng.random_bool(0.3) && !pending.is_empty() {
                let victim = rng.random_range(0..pending.len());
                let (id, _, _) = pending.swap_remove(victim);
                assert!(q.cancel(id));
            }
            if rng.random_bool(0.5) {
                let deadline = q.now() + SimDuration::from_millis(rng.random_range(0..3_000));
                while let Some((t, e)) = q.pop_before(deadline) {
                    let pos = pending
                        .iter()
                        .position(|&(_, _, s)| s == e)
                        .expect("delivered event was pending");
                    let (_, at, _) = pending.swap_remove(pos);
                    assert_eq!(t.as_millis(), at, "round {round}");
                    expected.push((at, e));
                }
            }
        }
        while let Some((t, e)) = q.pop() {
            let pos = pending
                .iter()
                .position(|&(_, _, s)| s == e)
                .expect("delivered event was pending");
            let (_, at, _) = pending.swap_remove(pos);
            assert_eq!(t.as_millis(), at);
            expected.push((at, e));
        }
        assert!(pending.is_empty(), "all non-cancelled events delivered");
        let mut sorted = expected.clone();
        sorted.sort();
        assert_eq!(expected, sorted, "delivery respects (time, id) order");
        assert_eq!(q.delivered(), expected.len() as u64);
    }
}
