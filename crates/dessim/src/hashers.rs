//! Small non-cryptographic hashers for simulator-internal tables.
//!
//! The standard library's default `SipHash` is keyed against collision
//! attacks, which the simulator does not need for tables it alone writes
//! (event-cancellation sets keyed by monotonically issued [`crate::event::EventId`]s).
//! FNV-1a is a few instructions per word, and — unlike the default
//! `RandomState` — produces the same table layout on every run, which is
//! one less source of incidental nondeterminism in debugging sessions.
//!
//! Do **not** use these aliases for any map whose iteration order reaches
//! a serialized artifact; golden outputs must come from ordered containers
//! (see `metrics::Counters`, which stays a `BTreeMap` for that reason).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a, with a word-at-a-time shortcut for the integer-key case that
/// dominates simulator usage.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(FNV_PRIME);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`Fnv1a`] (zero-sized, deterministic).
pub type FnvBuildHasher = BuildHasherDefault<Fnv1a>;

/// A `HashSet` using [`Fnv1a`].
pub type FnvHashSet<T> = HashSet<T, FnvBuildHasher>;

/// A `HashMap` using [`Fnv1a`].
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_map_behave_like_std() {
        let mut set: FnvHashSet<u64> = FnvHashSet::default();
        for i in 0..1000u64 {
            assert!(set.insert(i * 7919));
        }
        for i in 0..1000u64 {
            assert!(set.remove(&(i * 7919)));
        }
        assert!(set.is_empty());

        let mut map: FnvHashMap<&str, u32> = FnvHashMap::default();
        map.insert("alpha", 1);
        map.insert("beta", 2);
        assert_eq!(map.get("alpha"), Some(&1));
        assert_eq!(map.remove("beta"), Some(2));
    }

    #[test]
    fn byte_and_word_paths_are_deterministic() {
        let mut a = Fnv1a::default();
        a.write(b"abc");
        let mut b = Fnv1a::default();
        b.write(b"abc");
        assert_eq!(a.finish(), b.finish());

        let mut w1 = Fnv1a::default();
        w1.write_u64(42);
        let mut w2 = Fnv1a::default();
        w2.write_u64(42);
        assert_eq!(w1.finish(), w2.finish());
        assert_ne!(a.finish(), w1.finish());
    }
}
