//! Message latency models.

use crate::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How long a message spends in flight.
///
/// The paper does not publish its PeerSim latency configuration; PeerSim's
/// stock event-driven Kademlia module draws uniformly from a fixed window,
/// so [`LatencyModel::Uniform`] with a 10–100 ms window is the default used
/// by the experiment harness (documented in DESIGN.md). Latency only shifts
/// *when* routing-table updates happen; connectivity results are driven by
/// loss, churn and the protocol parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniformly distributed in `[min, max]` (inclusive).
    Uniform {
        /// Minimum delay.
        min: SimDuration,
        /// Maximum delay.
        max: SimDuration,
    },
}

impl LatencyModel {
    /// The default window used by the experiment harness.
    pub fn default_uniform() -> Self {
        LatencyModel::Uniform {
            min: SimDuration::from_millis(10),
            max: SimDuration::from_millis(100),
        }
    }

    /// Samples a delay.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` model has `min > max`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                assert!(min <= max, "uniform latency window inverted");
                SimDuration::from_millis(rng.random_range(min.as_millis()..=max.as_millis()))
            }
        }
    }

    /// An upper bound on the sampled delay, used to size RPC timeouts.
    pub fn upper_bound(&self) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { max, .. } => max,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::default_uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(42));
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(42));
        }
    }

    #[test]
    fn uniform_stays_in_window() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(5),
            max: SimDuration::from_millis(9),
        };
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(5) && d <= SimDuration::from_millis(9));
        }
    }

    #[test]
    fn uniform_covers_window() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(0),
            max: SimDuration::from_millis(1),
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[m.sample(&mut rng).as_millis() as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn upper_bound_dominates_samples() {
        let m = LatencyModel::default_uniform();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(m.sample(&mut rng) <= m.upper_bound());
        }
    }
}
