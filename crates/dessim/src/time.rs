//! Simulated-time types.
//!
//! All simulation schedules in the paper are expressed in minutes of
//! simulated time (setup ends at minute 30, stabilization at minute 120,
//! bucket refresh every 60 minutes, …) while protocol internals (RPC
//! timeouts, network latencies) live at millisecond granularity. A
//! millisecond tick as `u64` covers both comfortably: ~584 million years of
//! simulated time before overflow.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant of simulated time, measured in milliseconds since the start
/// of the simulation.
///
/// # Example
///
/// ```
/// use dessim::time::{SimDuration, SimTime};
///
/// let t = SimTime::from_minutes(2) + SimDuration::from_secs(30);
/// assert_eq!(t.as_millis(), 150_000);
/// assert_eq!(t.as_minutes_f64(), 2.5);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely late"
    /// sentinel for run-until bounds.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// Creates an instant from whole simulated minutes (the paper's natural
    /// unit).
    pub const fn from_minutes(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Raw milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole minutes since the epoch, truncating.
    pub const fn as_minutes(self) -> u64 {
        self.0 / 60_000
    }

    /// Minutes since the epoch as a float — the x-axis of every figure in
    /// the paper.
    pub fn as_minutes_f64(self) -> f64 {
        self.0 as f64 / 60_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_minutes(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole minutes, truncating.
    pub const fn as_minutes(self) -> u64 {
        self.0 / 60_000
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_minutes(3).as_millis(), 180_000);
        assert_eq!(SimTime::from_secs(90).as_minutes(), 1);
        assert_eq!(SimDuration::from_minutes(2).as_secs(), 120);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimDuration::from_secs(20), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs(4) * 3, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(9) / 3, SimDuration::from_secs(3));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(8);
        assert_eq!(b.since(a), SimDuration::from_secs(3));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn minutes_f64_matches_axis_units() {
        let t = SimTime::from_secs(90);
        assert!((t.as_minutes_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_millis(1));
        assert!(SimTime::MAX > SimTime::from_minutes(1_000_000));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_millis(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_millis(7)),
            Some(SimTime::from_millis(7))
        );
    }
}
