//! Labelled, reproducible random-number streams.
//!
//! Every stochastic component of a simulation (churn, traffic, transport,
//! node-id generation, …) gets its own stream derived from the scenario
//! seed and a stable label. Components therefore draw from independent
//! sequences: adding an extra draw in one component cannot perturb any
//! other, which keeps regression comparisons between scenario variants
//! meaningful.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives [`SmallRng`] streams from a master seed and a string label.
///
/// # Example
///
/// ```
/// use dessim::rng::RngFactory;
/// use rand::Rng;
///
/// let factory = RngFactory::new(42);
/// let mut churn = factory.stream("churn");
/// let mut traffic = factory.stream("traffic");
/// // Streams are independent but reproducible:
/// let a: u64 = churn.random();
/// let b: u64 = factory.stream("churn").random();
/// assert_eq!(a, b);
/// let _ = traffic;
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Creates the stream for `label`.
    pub fn stream(&self, label: &str) -> SmallRng {
        SmallRng::seed_from_u64(splitmix64(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// Creates a stream for a `(label, index)` pair, e.g. one per node.
    pub fn indexed_stream(&self, label: &str, index: u64) -> SmallRng {
        let mixed = splitmix64(self.seed ^ fnv1a(label.as_bytes()))
            .wrapping_add(splitmix64(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        SmallRng::seed_from_u64(splitmix64(mixed))
    }
}

/// FNV-1a over bytes; stable across platforms and Rust versions (unlike
/// `DefaultHasher`), which matters because stream derivation must never
/// change under toolchain upgrades.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// SplitMix64 finalizer: decorrelates nearby seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngFactory::new(7);
        let a: Vec<u32> = (0..8)
            .map(|_| 0)
            .scan(f.stream("x"), |r, _| Some(r.random()))
            .collect();
        let b: Vec<u32> = (0..8)
            .map(|_| 0)
            .scan(f.stream("x"), |r, _| Some(r.random()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream("churn").random();
        let b: u64 = f.stream("traffic").random();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream("x").random();
        let b: u64 = RngFactory::new(2).stream("x").random();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_differ_per_index() {
        let f = RngFactory::new(3);
        let a: u64 = f.indexed_stream("node", 0).random();
        let b: u64 = f.indexed_stream("node", 1).random();
        assert_ne!(a, b);
    }

    #[test]
    fn fnv_matches_published_test_vectors() {
        // Stream derivation must never change silently; these are the
        // official FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
