//! Event identifiers and queue entries.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Ids are unique per [`crate::scheduler::EventQueue`] for its entire
/// lifetime (a `u64` sequence number never reused). The handle also
/// carries the payload's generational slab key so cancellation is a
/// single slab remove — the generation check makes stale handles (events
/// already fired or cancelled) miss cleanly, with no cancelled-id set to
/// hash into on the delivery path. Identity, ordering and hashing are by
/// sequence number alone.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EventId {
    pub(crate) seq: u64,
    pub(crate) key: u64,
}

impl PartialEq for EventId {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for EventId {}

impl PartialOrd for EventId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EventId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.seq.cmp(&other.seq)
    }
}

impl std::hash::Hash for EventId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.seq.hash(state);
    }
}

impl EventId {
    /// The raw sequence number (also the global tie-breaking order).
    pub fn as_u64(self) -> u64 {
        self.seq
    }
}

/// Internal heap entry: ordered by time, then by insertion sequence so that
/// simultaneous events fire in the order they were scheduled. This total
/// order is what makes simulations deterministic.
///
/// The payload itself lives in the queue's slab (the id carries its key),
/// so heap sift operations move 24-byte entries regardless of how large the
/// event type is — the difference between shuffling pointers and shuffling
/// whole RPC messages on every push and pop.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Entry {
    pub at: SimTime,
    pub id: EventId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.id).cmp(&(other.at, other.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(seq: u64) -> EventId {
        EventId { seq, key: 0 }
    }

    #[test]
    fn entries_order_by_time_then_sequence() {
        let a = Entry {
            at: SimTime::from_millis(5),
            id: id(2),
        };
        let b = Entry {
            at: SimTime::from_millis(5),
            id: id(1),
        };
        let c = Entry {
            at: SimTime::from_millis(1),
            id: id(9),
        };
        assert!(c < b);
        assert!(b < a);
    }

    #[test]
    fn event_id_identity_ignores_the_slab_key() {
        let a = EventId { seq: 7, key: 1 };
        let b = EventId { seq: 7, key: 2 };
        let c = EventId { seq: 8, key: 1 };
        assert_eq!(a, b);
        assert!(a < c);
    }
}
