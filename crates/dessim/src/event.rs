//! Event identifiers and queue entries.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Opaque handle identifying a scheduled event, used for cancellation.
///
/// Ids are unique per [`crate::scheduler::EventQueue`] for its entire
/// lifetime (a `u64` sequence number never reused).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number (also the global tie-breaking order).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Internal heap entry: ordered by time, then by insertion sequence so that
/// simultaneous events fire in the order they were scheduled. This total
/// order is what makes simulations deterministic.
#[derive(Debug)]
pub(crate) struct Entry<E> {
    pub at: SimTime,
    pub id: EventId,
    pub event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.id).cmp(&(other.at, other.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_order_by_time_then_sequence() {
        let a = Entry {
            at: SimTime::from_millis(5),
            id: EventId(2),
            event: (),
        };
        let b = Entry {
            at: SimTime::from_millis(5),
            id: EventId(1),
            event: (),
        };
        let c = Entry {
            at: SimTime::from_millis(1),
            id: EventId(9),
            event: (),
        };
        assert!(c < b);
        assert!(b < a);
    }
}
