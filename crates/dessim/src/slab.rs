//! A generation-indexed slab: the allocation-free replacement for
//! map-heavy side tables on the simulator's hot paths — the pending-RPC
//! table in the `kademlia` crate (which re-exports this type) and the
//! event queue's payload store in [`crate::scheduler`].
//!
//! Keys pack a 32-bit slot index and a 32-bit generation counter into one
//! `u64`. Removing an entry bumps the slot's generation, so a stale key —
//! say, the timeout event of an RPC whose response already arrived and
//! whose slot has since been reused — misses cleanly instead of aliasing
//! the new occupant. Freed slots are recycled LIFO; once the slab has
//! grown to the workload's high-water mark, insert/remove cycles perform
//! no heap allocation.

/// One slot: the stored value (when occupied) plus the generation stamp
/// a key must match.
#[derive(Clone, Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A slab keyed by `u64` handles of the form `generation << 32 | slot`.
///
/// # Example
///
/// ```
/// use dessim::slab::GenSlab;
///
/// let mut slab: GenSlab<&str> = GenSlab::new();
/// let a = slab.insert("alpha");
/// assert_eq!(slab.get(a), Some(&"alpha"));
/// assert_eq!(slab.remove(a), Some("alpha"));
/// // The key died with the entry: the reused slot has a new generation.
/// let b = slab.insert("beta");
/// assert_ne!(a, b);
/// assert_eq!(slab.get(a), None);
/// assert_eq!(slab.get(b), Some(&"beta"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct GenSlab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

fn pack(generation: u32, slot: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(slot)
}

fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

impl<T> GenSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        GenSlab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The key the next [`GenSlab::insert`] will return. Lets callers
    /// embed the key in the value (or in events referencing it) before
    /// the insert happens.
    pub fn next_key(&self) -> u64 {
        match self.free.last() {
            Some(&slot) => pack(self.slots[slot as usize].generation, slot),
            None => pack(0, self.slots.len() as u32),
        }
    }

    /// Inserts a value, returning its key (always equal to what
    /// [`GenSlab::next_key`] reported just before).
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> u64 {
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.value.is_none(), "free slot must be vacant");
                s.value = Some(value);
                pack(s.generation, slot)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab overflow");
                self.slots.push(Slot {
                    generation: 0,
                    value: Some(value),
                });
                pack(0, slot)
            }
        }
    }

    /// The value stored under `key`, or `None` if the key is stale or was
    /// never issued.
    pub fn get(&self, key: u64) -> Option<&T> {
        let (generation, slot) = unpack(key);
        let s = self.slots.get(slot as usize)?;
        if s.generation != generation {
            return None;
        }
        s.value.as_ref()
    }

    /// Removes and returns the value under `key`; stale keys miss cleanly.
    /// The slot's generation is bumped so the removed key never resolves
    /// again, and the slot goes back on the free list.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let (generation, slot) = unpack(key);
        let s = self.slots.get_mut(slot as usize)?;
        if s.generation != generation {
            return None;
        }
        let value = s.value.take()?;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot);
        self.len -= 1;
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = GenSlab::new();
        let a = slab.insert(10u32);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab.get(b), Some(&20));
        assert_eq!(slab.remove(a), Some(10));
        assert_eq!(slab.remove(a), None, "double remove misses");
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.remove(b), Some(20));
        assert!(slab.is_empty());
    }

    #[test]
    fn stale_keys_never_alias_reused_slots() {
        let mut slab = GenSlab::new();
        let a = slab.insert("old");
        slab.remove(a);
        let b = slab.insert("new");
        assert_eq!((b as u32), (a as u32), "slot reused");
        assert_ne!(a, b, "generation differs");
        assert_eq!(slab.get(a), None, "stale key misses");
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get(b), Some(&"new"));
    }

    #[test]
    fn next_key_predicts_insert() {
        let mut slab = GenSlab::new();
        for i in 0..5 {
            let predicted = slab.next_key();
            assert_eq!(slab.insert(i), predicted);
        }
        slab.remove(pack(0, 3));
        let predicted = slab.next_key();
        assert_eq!(slab.insert(99), predicted);
        assert_eq!((predicted as u32), 3, "freed slot recycled LIFO");
        assert_eq!(predicted >> 32, 1, "with a bumped generation");
    }

    #[test]
    fn steady_state_insert_remove_reuses_capacity() {
        let mut slab = GenSlab::new();
        let keys: Vec<u64> = (0..64).map(|i| slab.insert(i)).collect();
        for k in keys {
            slab.remove(k);
        }
        // High-water mark reached: slots/free stay at capacity 64 through
        // any further balanced insert/remove cycling.
        for round in 0..10u64 {
            let keys: Vec<u64> = (0..64).map(|i| slab.insert(round * 100 + i)).collect();
            assert_eq!(slab.len(), 64);
            for k in keys {
                assert!(slab.remove(k).is_some());
            }
        }
        assert!(slab.is_empty());
    }
}
