//! Counters and summary statistics.
//!
//! [`Summary`] implements exactly the aggregation the paper's Table 2
//! reports: the mean and the *relative variance* (variance divided by mean)
//! of the minimum connectivity during the churn phase.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Streaming summary statistics over `f64` samples (Welford's algorithm,
/// numerically stable).
///
/// # Example
///
/// ```
/// use dessim::metrics::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.variance(), 4.0); // population variance
/// assert_eq!(s.relative_variance(), 0.8);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The paper's Table 2 statistic: `Variance / Mean`.
    ///
    /// Zero when the mean is zero (matching the paper's convention for the
    /// size-2500, k=5 rows where the minimum connectivity is constantly 0).
    pub fn relative_variance(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / m
        }
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} var={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.variance(),
            self.min,
            self.max
        )
    }
}

/// Named event counters (messages sent, lookups started, …).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    counts: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counts.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, count)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.relative_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn relative_variance_zero_mean() {
        let mut s = Summary::new();
        s.record(0.0);
        s.record(0.0);
        assert_eq!(s.relative_variance(), 0.0);
    }

    #[test]
    fn matches_naive_computation() {
        let data = [1.0, 2.0, 2.5, 7.25, -3.0, 0.5];
        let mut s = Summary::new();
        for &x in &data {
            s.record(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &data {
            all.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(1.0);
        a.record(2.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.incr("msg");
        c.add("msg", 4);
        c.incr("lookup");
        assert_eq!(c.get("msg"), 5);
        assert_eq!(c.get("lookup"), 1);
        assert_eq!(c.get("absent"), 0);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["lookup", "msg"]);
    }
}
