//! Counters and summary statistics.
//!
//! [`Summary`] implements exactly the aggregation the paper's Table 2
//! reports: the mean and the *relative variance* (variance divided by mean)
//! of the minimum connectivity during the churn phase.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Streaming summary statistics over `f64` samples (Welford's algorithm,
/// numerically stable).
///
/// # Example
///
/// ```
/// use dessim::metrics::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.variance(), 4.0); // population variance
/// assert_eq!(s.relative_variance(), 0.8);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The paper's Table 2 statistic: `Variance / Mean`.
    ///
    /// Zero when the mean is zero (matching the paper's convention for the
    /// size-2500, k=5 rows where the minimum connectivity is constantly 0).
    pub fn relative_variance(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / m
        }
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} var={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.variance(),
            self.min,
            self.max
        )
    }
}

/// Number of [`HotCounter`] variants.
pub const HOT_COUNTER_COUNT: usize = 10;

/// Counters incremented several times per simulated message — the ones
/// whose BTreeMap probes would otherwise dominate the event loop. Each
/// variant indexes a fixed slot in [`Counters::incr_hot`]'s array, so a
/// hot increment is a single add with no string hashing or tree walk.
///
/// Variant order **must** match the ascending byte order of the names in
/// `HOT_NAMES`: the discriminant is the array index, and `Counters::iter`
/// merge-sorts the hot slots against the BTreeMap stream by that order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotCounter {
    /// `late_response`
    LateResponse = 0,
    /// `lookup_finished`
    LookupFinished,
    /// `msg_lost`
    MsgLost,
    /// `msg_sent`
    MsgSent,
    /// `msg_to_dead`
    MsgToDead,
    /// `request_handled`
    RequestHandled,
    /// `response_received`
    ResponseReceived,
    /// `rpc_sent`
    RpcSent,
    /// `rpc_timeout`
    RpcTimeout,
    /// `value_hit`
    ValueHit,
}

/// Hot-counter names in ascending byte order (checked by a test); index
/// `i` is the name of the `HotCounter` with discriminant `i`.
const HOT_NAMES: [&str; HOT_COUNTER_COUNT] = [
    "late_response",
    "lookup_finished",
    "msg_lost",
    "msg_sent",
    "msg_to_dead",
    "request_handled",
    "response_received",
    "rpc_sent",
    "rpc_timeout",
    "value_hit",
];

impl HotCounter {
    /// The counter name this variant stands for.
    pub fn name(self) -> &'static str {
        HOT_NAMES[self as usize]
    }
}

/// Named event counters (messages sent, lookups started, …).
///
/// Two storage tiers share one namespace: arbitrary names live in a
/// `BTreeMap`, and the fixed [`HotCounter`] set lives in a plain array
/// updated by [`Counters::incr_hot`]. Reads ([`Counters::get`],
/// [`Counters::iter`]) always present the *sum* of both tiers per name, in
/// name order — callers cannot tell which path an increment took.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    counts: BTreeMap<String, u64>,
    hot: [u64; HOT_COUNTER_COUNT],
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    ///
    /// Hot path for the simulator (several increments per event), so the
    /// existing-key case must not allocate: the `String` key is built only
    /// on the first touch of a name, never on subsequent increments.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(count) = self.counts.get_mut(name) {
            *count += n;
        } else {
            self.counts.insert(name.to_owned(), n);
        }
    }

    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments a hot counter by one: a single array add, the per-message
    /// fast path. Equivalent to `incr(c.name())` as far as any reader can
    /// observe.
    #[inline]
    pub fn incr_hot(&mut self, c: HotCounter) {
        self.hot[c as usize] += 1;
    }

    /// Adds `n` to a hot counter. See [`Counters::incr_hot`].
    #[inline]
    pub fn add_hot(&mut self, c: HotCounter, n: u64) {
        self.hot[c as usize] += n;
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        let base = self.counts.get(name).copied().unwrap_or(0);
        match HOT_NAMES.binary_search(&name) {
            Ok(i) => base + self.hot[i],
            Err(_) => base,
        }
    }

    /// Iterates `(name, count)` pairs in name order. Hot counters that were
    /// never incremented stay invisible, exactly like untouched map names.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        MergedCounters {
            map: self.counts.iter().peekable(),
            hot: &self.hot,
            hot_idx: 0,
        }
    }
}

/// Merge-sorted view over the two counter tiers: the BTreeMap stream and
/// the statically name-sorted hot array. Names present in both tiers are
/// emitted once with the summed value.
struct MergedCounters<'a> {
    map: std::iter::Peekable<std::collections::btree_map::Iter<'a, String, u64>>,
    hot: &'a [u64; HOT_COUNTER_COUNT],
    hot_idx: usize,
}

impl<'a> Iterator for MergedCounters<'a> {
    type Item = (&'a str, u64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.hot_idx < HOT_COUNTER_COUNT && self.hot[self.hot_idx] == 0 {
            self.hot_idx += 1;
        }
        let hot_name = (self.hot_idx < HOT_COUNTER_COUNT).then(|| HOT_NAMES[self.hot_idx]);
        match (self.map.peek(), hot_name) {
            (Some(&(k, _)), Some(h)) if k.as_str() < h => {
                let (k, &v) = self.map.next().expect("peeked");
                Some((k.as_str(), v))
            }
            (Some(&(k, _)), Some(h)) if k.as_str() == h => {
                let (k, &v) = self.map.next().expect("peeked");
                let hv = self.hot[self.hot_idx];
                self.hot_idx += 1;
                Some((k.as_str(), v + hv))
            }
            (_, Some(h)) => {
                let v = self.hot[self.hot_idx];
                self.hot_idx += 1;
                Some((h, v))
            }
            (Some(_), None) => {
                let (k, &v) = self.map.next().expect("peeked");
                Some((k.as_str(), v))
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.relative_variance(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn relative_variance_zero_mean() {
        let mut s = Summary::new();
        s.record(0.0);
        s.record(0.0);
        assert_eq!(s.relative_variance(), 0.0);
    }

    #[test]
    fn matches_naive_computation() {
        let data = [1.0, 2.0, 2.5, 7.25, -3.0, 0.5];
        let mut s = Summary::new();
        for &x in &data {
            s.record(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Summary::new();
        for &x in &data {
            all.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..37] {
            left.record(x);
        }
        for &x in &data[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.record(1.0);
        a.record(2.0);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.incr("msg");
        c.add("msg", 4);
        c.incr("lookup");
        assert_eq!(c.get("msg"), 5);
        assert_eq!(c.get("lookup"), 1);
        assert_eq!(c.get("absent"), 0);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["lookup", "msg"]);
    }

    #[test]
    fn hot_names_are_sorted_and_match_discriminants() {
        assert!(HOT_NAMES.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(HotCounter::LateResponse.name(), "late_response");
        assert_eq!(HotCounter::ValueHit.name(), "value_hit");
        assert_eq!(HotCounter::ValueHit as usize, HOT_COUNTER_COUNT - 1);
    }

    #[test]
    fn hot_counters_are_indistinguishable_from_named() {
        let mut c = Counters::new();
        c.incr_hot(HotCounter::MsgSent);
        c.add_hot(HotCounter::MsgSent, 4);
        c.incr_hot(HotCounter::RpcTimeout);
        assert_eq!(c.get("msg_sent"), 5);
        assert_eq!(c.get("rpc_timeout"), 1);
        assert_eq!(c.get("msg_lost"), 0);
        // Untouched hot slots stay invisible to iteration.
        let pairs: Vec<(&str, u64)> = c.iter().collect();
        assert_eq!(pairs, vec![("msg_sent", 5), ("rpc_timeout", 1)]);
    }

    #[test]
    fn iter_merges_hot_and_map_tiers_in_name_order() {
        let mut c = Counters::new();
        c.incr("aardvark"); // before every hot name
        c.incr("node_spawned"); // between msg_to_dead and request_handled
        c.incr("zzz"); // after every hot name
        c.add("msg_sent", 2); // same name via both tiers: values sum
        c.add_hot(HotCounter::MsgSent, 3);
        c.incr_hot(HotCounter::LateResponse);
        c.incr_hot(HotCounter::ValueHit);
        let pairs: Vec<(&str, u64)> = c.iter().collect();
        assert_eq!(
            pairs,
            vec![
                ("aardvark", 1),
                ("late_response", 1),
                ("msg_sent", 5),
                ("node_spawned", 1),
                ("value_hit", 1),
                ("zzz", 1),
            ]
        );
        assert_eq!(c.get("msg_sent"), 5);
    }
}
