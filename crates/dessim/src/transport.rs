//! Message transport: latency plus loss.
//!
//! The transport is a pure *policy* object: given the current time and an
//! RNG it answers "when does this message arrive, if at all?". The protocol
//! layer owns the actual event scheduling, keeping the kernel generic.

use crate::latency::LatencyModel;
use crate::loss::LossModel;
use crate::time::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Delivery policy for simulated messages.
///
/// # Example
///
/// ```
/// use dessim::transport::Transport;
/// use dessim::latency::LatencyModel;
/// use dessim::loss::LossModel;
/// use dessim::time::{SimDuration, SimTime};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let t = Transport::new(
///     LatencyModel::Constant(SimDuration::from_millis(20)),
///     LossModel::None,
/// );
/// let mut rng = SmallRng::seed_from_u64(0);
/// let arrival = t.delivery_time(&mut rng, SimTime::from_millis(100));
/// assert_eq!(arrival, Some(SimTime::from_millis(120)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Transport {
    latency: LatencyModel,
    loss: LossModel,
}

impl Transport {
    /// Creates a transport from a latency and a loss model.
    pub fn new(latency: LatencyModel, loss: LossModel) -> Self {
        Transport { latency, loss }
    }

    /// A lossless transport with the given latency model.
    pub fn lossless(latency: LatencyModel) -> Self {
        Transport {
            latency,
            loss: LossModel::None,
        }
    }

    /// The latency model.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// The loss model.
    pub fn loss(&self) -> LossModel {
        self.loss
    }

    /// Replaces the loss model, keeping latency (builder-style).
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Decides the fate of one message sent at `now`: `Some(arrival)` or
    /// `None` if the message is lost.
    ///
    /// The loss draw happens *before* the latency draw and both always
    /// consume randomness in the same order, so traces with different loss
    /// models remain comparable.
    pub fn delivery_time<R: Rng + ?Sized>(&self, rng: &mut R, now: SimTime) -> Option<SimTime> {
        let lost = self.loss.is_lost(rng);
        let delay = self.latency.sample(rng);
        if lost {
            None
        } else {
            Some(now + delay)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn lossless_always_delivers() {
        let t = Transport::lossless(LatencyModel::default_uniform());
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(t.delivery_time(&mut rng, SimTime::ZERO).is_some());
        }
    }

    #[test]
    fn total_loss_never_delivers() {
        let t = Transport::new(
            LatencyModel::Constant(SimDuration::from_millis(1)),
            LossModel::Bernoulli(1.0),
        );
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(t.delivery_time(&mut rng, SimTime::ZERO).is_none());
        }
    }

    #[test]
    fn arrival_is_after_send() {
        let t = Transport::lossless(LatencyModel::default_uniform());
        let mut rng = SmallRng::seed_from_u64(5);
        let now = SimTime::from_secs(100);
        for _ in 0..100 {
            let at = t.delivery_time(&mut rng, now).expect("lossless");
            assert!(at > now);
        }
    }

    #[test]
    fn partial_loss_rate_is_plausible() {
        let t = Transport::new(
            LatencyModel::Constant(SimDuration::from_millis(1)),
            LossModel::Bernoulli(0.25),
        );
        let mut rng = SmallRng::seed_from_u64(11);
        let trials = 100_000;
        let delivered = (0..trials)
            .filter(|_| t.delivery_time(&mut rng, SimTime::ZERO).is_some())
            .count();
        let rate = delivered as f64 / trials as f64;
        assert!((rate - 0.75).abs() < 0.01, "delivery rate {rate}");
    }

    #[test]
    fn with_loss_keeps_latency() {
        let t = Transport::lossless(LatencyModel::Constant(SimDuration::from_millis(9)))
            .with_loss(LossModel::Bernoulli(0.5));
        assert_eq!(
            t.latency(),
            LatencyModel::Constant(SimDuration::from_millis(9))
        );
        assert_eq!(t.loss(), LossModel::Bernoulli(0.5));
    }
}
