//! Message-loss models, including the paper's Table 1 scenarios.
//!
//! The paper tailors loss probabilities to Kademlia's dominant two-way
//! (request/response) exchanges: a one-way loss probability `p` is chosen
//! so that the probability of a round trip failing, `1 − (1 − p)²`, hits a
//! target. Table 1:
//!
//! | scenario | P(loss, 1-way) | P(loss, 2-way) |
//! |----------|----------------|----------------|
//! | none     | 0.0 %          | 0 %            |
//! | low      | 2.5 %          | 5 %            |
//! | medium   | 13.4 %         | 25 %           |
//! | high     | 29.3 %         | 50 %           |

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-message (one-way) loss model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Every message arrives.
    #[default]
    None,
    /// Each message is dropped independently with this probability.
    Bernoulli(f64),
}

impl LossModel {
    /// Whether a particular message is lost.
    ///
    /// # Panics
    ///
    /// Panics if a `Bernoulli` probability is outside `[0, 1]`.
    pub fn is_lost<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        match *self {
            LossModel::None => false,
            LossModel::Bernoulli(p) => {
                assert!((0.0..=1.0).contains(&p), "loss probability out of range");
                rng.random_bool(p)
            }
        }
    }

    /// One-way loss probability.
    pub fn one_way_probability(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli(p) => p,
        }
    }

    /// Probability that a request/response round trip fails:
    /// `1 − (1 − p)²`.
    pub fn two_way_probability(&self) -> f64 {
        let p = self.one_way_probability();
        1.0 - (1.0 - p) * (1.0 - p)
    }
}

/// The paper's four loss scenarios (Table 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossScenario {
    /// No loss at all — the paper's default unless stated otherwise.
    #[default]
    None,
    /// 2.5 % one-way ⇒ 5 % two-way.
    Low,
    /// 13.4 % one-way ⇒ 25 % two-way.
    Medium,
    /// 29.3 % one-way ⇒ 50 % two-way.
    High,
}

impl LossScenario {
    /// All four scenarios in Table 1 order.
    pub const ALL: [LossScenario; 4] = [
        LossScenario::None,
        LossScenario::Low,
        LossScenario::Medium,
        LossScenario::High,
    ];

    /// The one-way loss probability of the scenario.
    pub fn one_way_probability(self) -> f64 {
        match self {
            LossScenario::None => 0.0,
            LossScenario::Low => 0.025,
            LossScenario::Medium => 0.134,
            LossScenario::High => 0.293,
        }
    }

    /// The nominal two-way failure probability reported in Table 1.
    pub fn nominal_two_way_probability(self) -> f64 {
        match self {
            LossScenario::None => 0.0,
            LossScenario::Low => 0.05,
            LossScenario::Medium => 0.25,
            LossScenario::High => 0.50,
        }
    }

    /// Converts the scenario to a per-message [`LossModel`].
    pub fn to_model(self) -> LossModel {
        match self {
            LossScenario::None => LossModel::None,
            other => LossModel::Bernoulli(other.one_way_probability()),
        }
    }
}

impl fmt::Display for LossScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LossScenario::None => "none",
            LossScenario::Low => "low",
            LossScenario::Medium => "medium",
            LossScenario::High => "high",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_loses() {
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(!LossModel::None.is_lost(&mut rng));
        }
    }

    #[test]
    fn bernoulli_one_always_loses() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(LossModel::Bernoulli(1.0).is_lost(&mut rng));
    }

    #[test]
    fn table1_two_way_probabilities_match_paper() {
        // 1 − (1 − p)² must land within rounding distance of the paper's
        // two-way targets: 5 %, 25 %, 50 %.
        for (scenario, target) in [
            (LossScenario::None, 0.0),
            (LossScenario::Low, 0.05),
            (LossScenario::Medium, 0.25),
            (LossScenario::High, 0.50),
        ] {
            let actual = scenario.to_model().two_way_probability();
            assert!(
                (actual - target).abs() < 0.001,
                "{scenario}: derived {actual}, Table 1 says {target}"
            );
            assert_eq!(scenario.nominal_two_way_probability(), target);
        }
    }

    #[test]
    fn empirical_rate_matches_probability() {
        let model = LossScenario::Medium.to_model();
        let mut rng = SmallRng::seed_from_u64(99);
        let trials = 200_000;
        let losses = (0..trials).filter(|_| model.is_lost(&mut rng)).count();
        let rate = losses as f64 / trials as f64;
        assert!(
            (rate - 0.134).abs() < 0.005,
            "empirical {rate} vs nominal 0.134"
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(LossScenario::Medium.to_string(), "medium");
        assert_eq!(LossScenario::None.to_string(), "none");
    }

    #[test]
    fn all_lists_in_table_order() {
        assert_eq!(LossScenario::ALL.len(), 4);
        assert_eq!(LossScenario::ALL[0], LossScenario::None);
        assert_eq!(LossScenario::ALL[3], LossScenario::High);
    }
}
