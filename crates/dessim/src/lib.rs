//! Deterministic discrete-event simulation kernel.
//!
//! The paper runs its Kademlia experiments on PeerSim's event-driven engine
//! ("EDProtocol"). This crate is the Rust substitute: a small, fully
//! deterministic discrete-event kernel plus the network-facing models the
//! experiments need.
//!
//! * [`time`] — simulated clock types ([`time::SimTime`],
//!   [`time::SimDuration`]); the paper's schedules are all expressed in
//!   simulated minutes.
//! * [`event`] / [`scheduler`] — a generic, cancellable event queue with a
//!   strict total order on events (time, then insertion sequence), which is
//!   what makes whole-simulation runs reproducible bit-for-bit.
//! * [`rng`] — seedable, labelled random-number streams so that independent
//!   components (churn, traffic, transport) draw from independent,
//!   reproducible sequences.
//! * [`transport`] — message-delivery policy combining a [`latency`] model
//!   with a [`loss`] model, including the paper's Table 1 loss scenarios
//!   (`none`/`low`/`medium`/`high` one-way loss ⇒ 0/5/25/50 % two-way
//!   failure).
//! * [`metrics`] — counters and summary statistics (mean, variance and the
//!   *relative variance* used by Table 2).
//!
//! # Example
//!
//! ```
//! use dessim::scheduler::EventQueue;
//! use dessim::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::from_secs(1), Ev::Pong);
//! q.schedule_at(SimTime::ZERO, Ev::Ping);
//! let (t1, e1) = q.pop().unwrap();
//! assert_eq!((t1, e1), (SimTime::ZERO, Ev::Ping));
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!((t2, e2), (SimTime::from_secs(1), Ev::Pong));
//! assert!(q.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod hashers;
pub mod latency;
pub mod loss;
pub mod metrics;
pub mod rng;
pub mod scheduler;
pub mod slab;
pub mod time;
pub mod transport;

pub use scheduler::EventQueue;
pub use time::{SimDuration, SimTime};
pub use transport::Transport;
