//! Property-based tests for the simulation kernel.

use dessim::metrics::Summary;
use dessim::scheduler::EventQueue;
use dessim::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events always come out in non-decreasing time order, with ties
    /// broken by insertion order.
    #[test]
    fn queue_delivers_sorted(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_millis(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((prev_at, prev_idx)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(idx > prev_idx, "FIFO among simultaneous events");
                }
            }
            prop_assert_eq!(at, SimTime::from_millis(times[idx]));
            last = Some((at, idx));
        }
        prop_assert_eq!(q.delivered(), times.len() as u64);
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_is_exact(
        times in proptest::collection::vec(0u64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule_at(SimTime::from_millis(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(q.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, idx)) = q.pop() {
            delivered.push(idx);
        }
        delivered.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(delivered, expected);
    }

    /// The clock never runs backwards, regardless of interleaved
    /// scheduling and popping.
    #[test]
    fn clock_is_monotone(ops in proptest::collection::vec((0u64..1000, any::<bool>()), 1..200)) {
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for (delay, pop) in ops {
            if pop {
                if q.pop().is_some() {
                    prop_assert!(q.now() >= last);
                    last = q.now();
                }
            } else {
                q.schedule_after(SimDuration::from_millis(delay), ());
            }
        }
    }

    /// Summary matches a naive two-pass mean/variance computation.
    #[test]
    fn summary_matches_naive(data in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = Summary::new();
        for &x in &data {
            s.record(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), data.len() as u64);
        prop_assert_eq!(s.min(), data.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), data.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging summaries over any split equals the sequential summary.
    #[test]
    fn summary_merge_any_split(
        data in proptest::collection::vec(-1e3f64..1e3, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64 * split_frac) as usize).min(data.len());
        let mut whole = Summary::new();
        for &x in &data {
            whole.record(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &data[..split] {
            left.record(x);
        }
        for &x in &data[split..] {
            right.record(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance().abs()));
    }

    /// Time arithmetic: conversions and ordering are consistent.
    #[test]
    fn time_arithmetic(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let ta = SimTime::from_millis(a);
        let tb = SimTime::from_millis(b);
        prop_assert_eq!(ta < tb, a < b);
        let d = SimDuration::from_millis(b);
        prop_assert_eq!((ta + d).as_millis(), a + b);
        prop_assert_eq!(tb.since(ta).as_millis(), b.saturating_sub(a));
        prop_assert_eq!(SimTime::from_minutes(a / 60_000 + 1).as_minutes(), a / 60_000 + 1);
    }

    /// Labelled RNG streams are reproducible and label-sensitive.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use dessim::rng::RngFactory;
        use rand::Rng;
        let f = RngFactory::new(seed);
        let mut a = f.stream(&label);
        let mut b = f.stream(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }
}
