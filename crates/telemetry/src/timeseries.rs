//! Windowed time-series aggregation keyed by simulated minute.
//!
//! The experiment harness snapshots connectivity on a minute grid; the
//! service metrics (lookup successes, retrieval probes) arrive as events at
//! arbitrary simulated instants. [`MinuteSeries`] buckets those events into
//! per-minute windows so the harness can align both series on the same
//! x-axis, and [`MinuteSeries::merge`] combines per-worker series from
//! parallel runners (windows are additive, like histogram buckets).
//!
//! # Example
//!
//! ```
//! use kad_telemetry::MinuteSeries;
//!
//! let mut s = MinuteSeries::new();
//! s.record(3, 1.0);
//! s.record(3, 0.0);
//! s.record(7, 1.0);
//! let w3 = s.window(3).expect("minute 3 recorded");
//! assert_eq!(w3.count, 2);
//! assert_eq!(w3.mean(), 0.5);
//! assert_eq!(s.range_stats(0, 5).count, 2); // [0, 5) excludes minute 7
//! ```

use std::collections::BTreeMap;

/// Aggregate statistics of one window (or a union of windows).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of the samples.
    pub sum: f64,
    /// Smallest sample (`+inf` when empty).
    pub min: f64,
    /// Largest sample (`-inf` when empty).
    pub max: f64,
}

impl Default for WindowStats {
    fn default() -> Self {
        WindowStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl WindowStats {
    /// Adds one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Absorbs another window.
    pub fn absorb(&mut self, other: &WindowStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A time series of [`WindowStats`] keyed by simulated minute.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MinuteSeries {
    windows: BTreeMap<u64, WindowStats>,
}

impl MinuteSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        MinuteSeries::default()
    }

    /// Records a sample in the window of `minute`.
    pub fn record(&mut self, minute: u64, value: f64) {
        self.windows.entry(minute).or_default().record(value);
    }

    /// The window of `minute`, if any sample fell into it.
    pub fn window(&self, minute: u64) -> Option<&WindowStats> {
        self.windows.get(&minute)
    }

    /// Aggregate over the half-open minute range `[from, to)`.
    pub fn range_stats(&self, from: u64, to: u64) -> WindowStats {
        let mut total = WindowStats::default();
        for (_, w) in self.windows.range(from..to) {
            total.absorb(w);
        }
        total
    }

    /// Total samples across all windows.
    pub fn total_count(&self) -> u64 {
        self.windows.values().map(|w| w.count).sum()
    }

    /// Iterates the populated windows in ascending minute order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &WindowStats)> {
        self.windows.iter().map(|(&m, w)| (m, w))
    }

    /// Merges another series into this one (windows are additive — same
    /// contract as [`crate::LogHistogram::merge`]).
    pub fn merge(&mut self, other: &MinuteSeries) {
        for (&minute, w) in &other.windows {
            self.windows.entry(minute).or_default().absorb(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_key_by_minute() {
        let mut s = MinuteSeries::new();
        s.record(1, 2.0);
        s.record(1, 4.0);
        s.record(9, 1.0);
        assert_eq!(s.window(1).unwrap().count, 2);
        assert_eq!(s.window(1).unwrap().mean(), 3.0);
        assert!(s.window(2).is_none());
        assert_eq!(s.total_count(), 3);
        let minutes: Vec<u64> = s.iter().map(|(m, _)| m).collect();
        assert_eq!(minutes, vec![1, 9]);
    }

    #[test]
    fn range_is_half_open() {
        let mut s = MinuteSeries::new();
        for m in 0..10 {
            s.record(m, m as f64);
        }
        let r = s.range_stats(2, 5);
        assert_eq!(r.count, 3);
        assert_eq!(r.sum, 2.0 + 3.0 + 4.0);
        assert_eq!(r.min, 2.0);
        assert_eq!(r.max, 4.0);
        assert_eq!(s.range_stats(5, 5).count, 0);
        assert_eq!(s.range_stats(5, 5).mean(), 0.0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = MinuteSeries::new();
        let mut a = MinuteSeries::new();
        let mut b = MinuteSeries::new();
        for (i, (m, v)) in [(0u64, 1.0f64), (0, 3.0), (5, -2.0), (5, 8.0), (6, 0.0)]
            .iter()
            .enumerate()
        {
            all.record(*m, *v);
            if i % 2 == 0 {
                a.record(*m, *v);
            } else {
                b.record(*m, *v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
