//! Hierarchical span profiler: where does the simulated minute go?
//!
//! The scale-leap and sharding items on the roadmap both start with the
//! same question — how much of a grid cell's wall-time is actor logic,
//! how much is the event kernel, how much is the κ engine — and the
//! existing instruments (families, histograms, counters) only count
//! *simulated* quantities. This module measures the host clock, with the
//! same contracts the families pin:
//!
//! * **Guard-based spans.** [`span("label")`](span) returns a
//!   [`SpanTimer`]; dropping it (normal exit, early `return`, or a panic
//!   unwinding through the scope) records the elapsed wall-time. Spans
//!   nest: while a timer is live, further spans record under a
//!   slash-joined label path (`"cell/session/on-minute/attacker"`), so
//!   the aggregate is a tree keyed by static labels.
//! * **Self vs total time.** Each path accumulates call count, *total*
//!   nanoseconds (its whole extent) and *self* nanoseconds (total minus
//!   the time spent in child spans) — the two columns a flame-graph-style
//!   table needs.
//! * **Opt-in and cheap when off.** Recording only happens after
//!   [`install`] on the *current thread*; without it a [`span`] call is
//!   one thread-local `Option` discriminant check, the same contract as
//!   the network's telemetry sink. Grid workers each install their own
//!   profile per cell and the per-cell [`SpanProfile`]s
//!   [`merge`](SpanProfile::merge)
//!   losslessly (property-tested like the families), so parallel
//!   [`MatrixRunner`](../../kad_experiments/matrix/struct.MatrixRunner.html)
//!   sweeps aggregate exactly.
//!
//! Wall-clock numbers are **non-deterministic by nature** and therefore
//! live only in observe artifacts (`profile.csv`), never in golden CSVs.
//!
//! # Example
//!
//! ```
//! use kad_telemetry::span::{self, SpanProfile};
//!
//! span::install();
//! {
//!     let _cell = span::span("cell");
//!     let _inner = span::span("solve");
//! } // guards drop here, recording "cell" and "cell/solve"
//! let profile: SpanProfile = span::take().expect("installed above");
//! assert_eq!(profile.get("cell").unwrap().calls, 1);
//! assert_eq!(profile.get("cell/solve").unwrap().calls, 1);
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Aggregated statistics of one span label path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Times a span with this path was closed.
    pub calls: u64,
    /// Total wall nanoseconds across all calls (children included).
    pub total_ns: u64,
    /// Wall nanoseconds not attributed to any child span.
    pub self_ns: u64,
}

impl SpanStats {
    fn accumulate(&mut self, total_ns: u64, self_ns: u64) {
        self.calls += 1;
        self.total_ns += total_ns;
        self.self_ns += self_ns;
    }
}

/// Aggregation of closed spans keyed by slash-joined label path (see
/// module docs). Deterministic iteration order (`BTreeMap`), lossless
/// [`merge`](SpanProfile::merge).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanProfile {
    spans: BTreeMap<String, SpanStats>,
}

impl SpanProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        SpanProfile::default()
    }

    /// Statistics of `path`, if any span closed there.
    pub fn get(&self, path: &str) -> Option<&SpanStats> {
        self.spans.get(path)
    }

    /// Number of distinct label paths observed.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates `(path, stats)` in path order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SpanStats)> + '_ {
        self.spans.iter().map(|(p, s)| (p.as_str(), s))
    }

    /// Sum of `self_ns` over every path: all attributed wall-time, each
    /// nanosecond counted exactly once regardless of nesting depth.
    pub fn attributed_ns(&self) -> u64 {
        self.spans.values().map(|s| s.self_ns).sum()
    }

    /// Sum of `total_ns` over the root paths (no `/`): the profile's
    /// whole covered extent, the denominator-side of the "≥ 95 % of cell
    /// wall-time attributed" acceptance check.
    pub fn root_total_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|(p, _)| !p.contains('/'))
            .map(|(_, s)| s.total_ns)
            .sum()
    }

    /// Low-level recording of one closed span (used directly by the
    /// merge-equivalence property tests; instrumented code goes through
    /// [`span`] guards instead).
    pub fn record(&mut self, path: &str, total_ns: u64, self_ns: u64) {
        self.spans
            .entry(path.to_string())
            .or_default()
            .accumulate(total_ns, self_ns);
    }

    /// Merges another profile into this one: per-path calls and
    /// nanoseconds add, so merging per-worker profiles equals recording
    /// the same spans into a single profile.
    pub fn merge(&mut self, other: &SpanProfile) {
        for (path, stats) in &other.spans {
            let slot = self.spans.entry(path.clone()).or_default();
            slot.calls += stats.calls;
            slot.total_ns += stats.total_ns;
            slot.self_ns += stats.self_ns;
        }
    }
}

/// One open span on the collector's stack.
struct Frame {
    start: Instant,
    /// Nanoseconds already attributed to closed children of this frame.
    child_ns: u64,
    /// Index of this span's [`Slot`] in the collector's arena.
    slot: usize,
}

/// One discovered span path: the slash-joined path (built once, the
/// first time the `(parent, label)` pair opens) and its running stats.
struct Slot {
    path: String,
    stats: SpanStats,
}

/// The per-thread collector. Hot spans close tens of thousands of times
/// per cell (the lookup dispatcher), so the close path must not allocate
/// or walk a string-keyed tree: paths live in a slot arena, the
/// `(parent slot, label address)` memo resolves a re-opened span to its
/// slot with one hash lookup, and closing is a stack pop plus an indexed
/// accumulate. [`take`] folds the arena into the public [`SpanProfile`].
struct Collector {
    slots: Vec<Slot>,
    /// `(parent slot or usize::MAX for roots, label data pointer)` →
    /// slot index. Keying on the `&'static str` address is sound (a
    /// given address always means the same label); two call sites whose
    /// equal literals were *not* pooled just fill two slots with the
    /// same path, which the fold in [`take`] merges losslessly.
    index: HashMap<(usize, *const u8), usize>,
    /// Last `(key, slot)` resolved: a hot span (the lookup dispatcher
    /// closes tens of thousands of times under one parent) re-opens with
    /// an identical key, so this one-entry cache short-circuits the hash
    /// lookup on almost every open.
    last: Option<((usize, *const u8), usize)>,
    stack: Vec<Frame>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Installs a fresh profile on the current thread: every [`span`] guard
/// dropped from now on records into it, until [`take`] removes it.
/// Replaces (and discards) any previously installed profile.
pub fn install() {
    COLLECTOR.with(|slot| {
        *slot.borrow_mut() = Some(Collector {
            slots: Vec::new(),
            index: HashMap::new(),
            last: None,
            stack: Vec::new(),
        });
    });
}

/// Removes and returns the current thread's profile (`None` when
/// [`install`] was never called or the profile was already taken). Spans
/// still open lose their timings — take after the root guard dropped.
pub fn take() -> Option<SpanProfile> {
    COLLECTOR.with(|slot| {
        slot.borrow_mut().take().map(|c| {
            let mut profile = SpanProfile::new();
            for slot in c.slots {
                // A slot whose span never closed (still open at take)
                // has zero calls and no timing to report.
                if slot.stats.calls == 0 {
                    continue;
                }
                let entry = profile.spans.entry(slot.path).or_default();
                entry.calls += slot.stats.calls;
                entry.total_ns += slot.stats.total_ns;
                entry.self_ns += slot.stats.self_ns;
            }
            profile
        })
    })
}

/// Whether a profile is installed on the current thread.
pub fn is_installed() -> bool {
    COLLECTOR.with(|slot| slot.borrow().is_some())
}

/// Opens a span. With no profile installed this is one thread-local
/// `Option` check and the returned guard is inert; with one installed,
/// dropping the guard records the elapsed wall-time under the nesting
/// path (see module docs).
#[must_use = "the span measures until the returned guard drops"]
pub fn span(label: &'static str) -> SpanTimer {
    let armed = COLLECTOR.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(collector) = slot.as_mut() else {
            return false;
        };
        let parent = collector.stack.last().map_or(usize::MAX, |f| f.slot);
        let key = (parent, label.as_ptr());
        let slot_index = match collector.last {
            Some((last_key, index)) if last_key == key => index,
            _ => match collector.index.get(&key) {
                Some(&index) => index,
                None => {
                    // First time this (parent, label) pair opens: build
                    // the slash-joined path once; every later open hits
                    // the cache or hash lookup above.
                    let path = match collector.slots.get(parent) {
                        Some(parent_slot) => format!("{}/{label}", parent_slot.path),
                        None => label.to_string(),
                    };
                    let index = collector.slots.len();
                    collector.slots.push(Slot {
                        path,
                        stats: SpanStats::default(),
                    });
                    collector.index.insert(key, index);
                    index
                }
            },
        };
        collector.last = Some((key, slot_index));
        collector.stack.push(Frame {
            start: Instant::now(),
            child_ns: 0,
            slot: slot_index,
        });
        true
    });
    SpanTimer { armed }
}

/// Guard returned by [`span`]: records on drop (RAII, so early returns
/// and unwinding panics both close the span).
#[must_use = "the span measures until this guard drops"]
pub struct SpanTimer {
    armed: bool,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        COLLECTOR.with(|slot| {
            let mut slot = slot.borrow_mut();
            // `take` may have run while this guard was open (the guard
            // outlived the profile): nothing left to record into.
            let Some(collector) = slot.as_mut() else {
                return;
            };
            let Some(frame) = collector.stack.pop() else {
                return;
            };
            let total_ns = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let self_ns = total_ns.saturating_sub(frame.child_ns);
            collector.slots[frame.slot]
                .stats
                .accumulate(total_ns, self_ns);
            // Bill this span's extent against the parent's self-time.
            if let Some(parent) = collector.stack.last_mut() {
                parent.child_ns += total_ns;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Everything here touches the same thread-local collector, so the
    /// tests run serially on their own threads to stay independent of
    /// the test harness's thread reuse.
    fn on_fresh_thread<R: Send>(f: impl FnOnce() -> R + Send) -> R {
        std::thread::scope(|s| s.spawn(f).join().expect("test thread"))
    }

    #[test]
    fn uninstalled_span_is_inert() {
        on_fresh_thread(|| {
            assert!(!is_installed());
            let guard = span("never-recorded");
            drop(guard);
            assert!(take().is_none(), "nothing was installed");
        });
    }

    #[test]
    fn nested_spans_build_label_paths() {
        on_fresh_thread(|| {
            install();
            assert!(is_installed());
            {
                let _outer = span("outer");
                {
                    let _inner = span("inner");
                    let _leaf = span("leaf");
                }
                let _second = span("inner");
            }
            let profile = take().expect("installed");
            assert!(!is_installed(), "take removes the profile");
            assert_eq!(profile.get("outer").unwrap().calls, 1);
            assert_eq!(profile.get("outer/inner").unwrap().calls, 2);
            assert_eq!(profile.get("outer/inner/leaf").unwrap().calls, 1);
            assert_eq!(profile.len(), 3);
        });
    }

    #[test]
    fn self_time_excludes_children() {
        on_fresh_thread(|| {
            install();
            {
                let _outer = span("outer");
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            let profile = take().expect("installed");
            let outer = profile.get("outer").unwrap();
            let inner = profile.get("outer/inner").unwrap();
            assert!(inner.total_ns >= 5_000_000, "sleep measured");
            assert!(outer.total_ns >= inner.total_ns, "outer spans inner");
            assert_eq!(
                outer.self_ns,
                outer.total_ns - inner.total_ns,
                "outer's self-time excludes the child's extent"
            );
            assert_eq!(
                profile.attributed_ns(),
                outer.total_ns,
                "every nanosecond counted exactly once"
            );
            assert_eq!(profile.root_total_ns(), outer.total_ns);
        });
    }

    #[test]
    fn early_return_still_records() {
        fn may_bail(bail: bool) -> u32 {
            let _guard = span("bails");
            if bail {
                return 1;
            }
            2
        }
        on_fresh_thread(|| {
            install();
            assert_eq!(may_bail(true), 1);
            assert_eq!(may_bail(false), 2);
            let profile = take().expect("installed");
            assert_eq!(profile.get("bails").unwrap().calls, 2);
        });
    }

    #[test]
    fn panic_unwind_closes_the_span() {
        on_fresh_thread(|| {
            install();
            let caught = std::panic::catch_unwind(|| {
                let _guard = span("doomed");
                panic!("boom");
            });
            assert!(caught.is_err());
            let profile = take().expect("installed");
            assert_eq!(
                profile.get("doomed").unwrap().calls,
                1,
                "unwinding dropped the guard and recorded the span"
            );
        });
    }

    #[test]
    fn merge_adds_per_path() {
        let mut a = SpanProfile::new();
        a.record("cell", 100, 40);
        a.record("cell/solve", 60, 60);
        let mut b = SpanProfile::new();
        b.record("cell", 50, 20);
        b.record("cell/probe", 30, 30);
        a.merge(&b);
        assert_eq!(
            a.get("cell").copied().unwrap(),
            SpanStats {
                calls: 2,
                total_ns: 150,
                self_ns: 60
            }
        );
        assert_eq!(a.get("cell/solve").unwrap().calls, 1);
        assert_eq!(a.get("cell/probe").unwrap().calls, 1);
        assert_eq!(a.attributed_ns(), 150);
        assert_eq!(a.root_total_ns(), 150);
    }

    #[test]
    fn guard_outliving_the_profile_is_harmless() {
        on_fresh_thread(|| {
            install();
            let guard = span("orphan");
            let profile = take().expect("installed");
            assert!(profile.is_empty(), "span still open when taken");
            drop(guard); // must not panic or resurrect a collector
            assert!(!is_installed());
        });
    }
}
