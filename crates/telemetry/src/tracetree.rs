//! Simulated-time trace trees: per-RPC spans, critical-path latency
//! attribution and the deterministic p99 exemplar reservoir.
//!
//! A [`crate::LookupRecord`] says *how long* a lookup took; a
//! [`TraceTree`] says *why*. Every FIND_NODE / FIND_VALUE RPC a lookup
//! issues becomes an [`RpcSpan`] carrying its send instant, its outcome
//! (response or timeout), whether the queried node was compromised when
//! the span closed, and a causal parent: the RPC whose completion
//! triggered this dispatch. In the discrete-event simulator a triggered
//! RPC departs at the *same instant* its cause completed, so the chain of
//! `caused_by` links walked back from the finalizing RPC telescopes
//! exactly — the per-link durations sum to `completed_ms − started_ms`
//! with no slack. [`TraceTree::critical_path`] extracts that chain and
//! buckets each link's duration into RTT or timeout time (split by the
//! compromise flag), prepending the load engine's queue wait, and the
//! resulting [`Attribution`] provably conserves: `queue + rtt + timeout ==`
//! end-to-end latency (pinned by [`TraceTree::conserves`] and the
//! experiment-level conservation tests).
//!
//! [`ExemplarReservoir`] keeps the worst-latency trees per cell and phase
//! without randomness: a bounded top-K ordered by end-to-end latency
//! (ties broken by lookup id, then start instant), so same-seed runs pick
//! byte-identical exemplars and [`ExemplarReservoir::merge`] across
//! matrix workers is a lossless, order-independent union-then-truncate.

use crate::trace::LookupRecord;

/// How an RPC span ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanOutcome {
    /// A response arrived; the span's duration is the round-trip time.
    Responded,
    /// The RPC timed out; the span's duration is the full timeout window.
    TimedOut,
    /// Still pending when the lookup terminated (a straggler the lookup
    /// no longer needed). Never on the critical path.
    Inflight,
}

impl SpanOutcome {
    /// Short label for CSV cells and trace-event names.
    pub fn label(&self) -> &'static str {
        match self {
            SpanOutcome::Responded => "responded",
            SpanOutcome::TimedOut => "timeout",
            SpanOutcome::Inflight => "inflight",
        }
    }
}

/// One RPC issued by a lookup, as a simulated-time span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpcSpan {
    /// The simulator-unique RPC id (also the span id).
    pub rpc_id: u64,
    /// Index of the queried node.
    pub to_node: u32,
    /// Whether the queried node was compromised when the span closed.
    pub to_compromised: bool,
    /// Simulated send instant, milliseconds.
    pub sent_ms: u64,
    /// Simulated completion instant (response delivery, timeout firing,
    /// or — for [`SpanOutcome::Inflight`] — the lookup's own completion).
    pub completed_ms: u64,
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// The RPC of the **same lookup** whose completion triggered this
    /// dispatch; `None` for seed queries sent when the lookup started.
    pub caused_by: Option<u64>,
}

impl RpcSpan {
    /// Span duration in simulated milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.completed_ms.saturating_sub(self.sent_ms)
    }
}

/// Critical-path latency decomposition, in simulated milliseconds.
///
/// `rtt_compromised_ms ⊆ rtt_ms` and `timeout_compromised_ms ⊆
/// timeout_ms`: the compromised columns are the share of each category
/// spent on compromised nodes, not additional time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Admission-queue wait before the lookup was issued.
    pub queue_ms: u64,
    /// Round-trip time of responded critical-path RPCs.
    pub rtt_ms: u64,
    /// Timeout windows burned on unresponsive critical-path RPCs.
    pub timeout_ms: u64,
    /// Share of `rtt_ms` spent querying compromised nodes.
    pub rtt_compromised_ms: u64,
    /// Share of `timeout_ms` spent waiting on compromised nodes.
    pub timeout_compromised_ms: u64,
}

impl Attribution {
    /// End-to-end latency the attribution accounts for:
    /// `queue + rtt + timeout`.
    pub fn total_ms(&self) -> u64 {
        self.queue_ms + self.rtt_ms + self.timeout_ms
    }

    /// Critical-path time spent on compromised nodes (RTT + timeouts).
    pub fn compromised_ms(&self) -> u64 {
        self.rtt_compromised_ms + self.timeout_compromised_ms
    }
}

/// The chain of dependent RPCs that determined a lookup's completion
/// time, root (seed query) first, plus its latency decomposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// RPC ids on the path, in causal (send) order.
    pub rpc_ids: Vec<u64>,
    /// Where the end-to-end latency went.
    pub attribution: Attribution,
}

/// A completed lookup's full trace: its record, its admission queue wait,
/// every RPC span it (or, for a disjoint-path group, any member path)
/// issued, and the RPC whose completion finalized it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceTree {
    /// The flat record the same lookup emitted through
    /// [`crate::TelemetrySink::on_lookup`].
    pub record: LookupRecord,
    /// Simulated milliseconds the request waited in the load engine's
    /// admission queue before the lookup was issued (0 outside the load
    /// engine).
    pub queue_wait_ms: u64,
    /// Every RPC span, in send order.
    pub spans: Vec<RpcSpan>,
    /// The RPC whose completion finalized the lookup; `None` when the
    /// lookup terminated at creation without sending anything.
    pub final_rpc: Option<u64>,
}

impl TraceTree {
    /// End-to-end request latency: queue wait plus lookup wall time.
    pub fn end_to_end_ms(&self) -> u64 {
        self.queue_wait_ms + self.record.latency_ms()
    }

    /// Extracts the critical path: walk `caused_by` links back from the
    /// finalizing RPC, then reverse into causal order. Each link
    /// contributes its duration as RTT or timeout time; the queue wait is
    /// prepended.
    pub fn critical_path(&self) -> CriticalPath {
        let mut attribution = Attribution {
            queue_ms: self.queue_wait_ms,
            ..Attribution::default()
        };
        let mut rpc_ids = Vec::new();
        let mut cursor = self.final_rpc;
        while let Some(id) = cursor {
            let Some(span) = self.spans.iter().find(|s| s.rpc_id == id) else {
                break;
            };
            rpc_ids.push(id);
            let d = span.duration_ms();
            match span.outcome {
                SpanOutcome::Responded => {
                    attribution.rtt_ms += d;
                    if span.to_compromised {
                        attribution.rtt_compromised_ms += d;
                    }
                }
                SpanOutcome::TimedOut => {
                    attribution.timeout_ms += d;
                    if span.to_compromised {
                        attribution.timeout_compromised_ms += d;
                    }
                }
                // Stragglers never finalize a lookup; reaching one means
                // the link data is inconsistent, so stop rather than
                // attribute unfinished time.
                SpanOutcome::Inflight => break,
            }
            cursor = span.caused_by;
        }
        rpc_ids.reverse();
        CriticalPath {
            rpc_ids,
            attribution,
        }
    }

    /// Whether the critical-path attribution exactly accounts for the
    /// end-to-end latency — true by construction for trees recorded by
    /// the simulator (triggered RPCs depart the instant their cause
    /// completes, so chain durations telescope).
    pub fn conserves(&self) -> bool {
        self.critical_path().attribution.total_ms() == self.end_to_end_ms()
    }
}

/// Identity of a tree inside a reservoir: the simulator never emits two
/// trees with the same (lookup id, start, completion) triple in one run,
/// and merging shards that saw the same tree must not double-count it.
fn tree_key(t: &TraceTree) -> (u64, u64, u64) {
    (
        t.record.lookup_id,
        t.record.started_ms,
        t.record.completed_ms,
    )
}

/// Ordering key: worst end-to-end latency first, ties broken by lookup
/// id then start instant so selection is deterministic under any offer
/// order.
fn rank_key(t: &TraceTree) -> (std::cmp::Reverse<u64>, u64, u64) {
    (
        std::cmp::Reverse(t.end_to_end_ms()),
        t.record.lookup_id,
        t.record.started_ms,
    )
}

/// A deterministic bounded top-K of the worst-latency trace trees.
///
/// No randomness: [`offer`](ExemplarReservoir::offer) keeps the `capacity`
/// trees with the highest end-to-end latency (stable tiebreaks), so the
/// trees backing a histogram's high-percentile buckets — the p99
/// offenders — survive while the bulk is dropped. Same-seed runs pick
/// byte-identical exemplars, and [`merge`](ExemplarReservoir::merge) is a
/// deduplicating union-then-truncate: lossless (merging shards equals the
/// single-stream result), commutative and idempotent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExemplarReservoir {
    capacity: usize,
    entries: Vec<TraceTree>,
}

impl ExemplarReservoir {
    /// An empty reservoir keeping at most `capacity` exemplars.
    pub fn new(capacity: usize) -> ExemplarReservoir {
        ExemplarReservoir {
            capacity,
            entries: Vec::new(),
        }
    }

    /// The maximum number of exemplars kept.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exemplars currently held, worst latency first.
    pub fn exemplars(&self) -> &[TraceTree] {
        &self.entries
    }

    /// Number of exemplars currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the reservoir holds no exemplars.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers a tree; it is cloned in iff it ranks inside the top
    /// `capacity` — rejected offers (the common case on a hot stream)
    /// never clone.
    pub fn offer(&mut self, tree: &TraceTree) {
        if self.capacity == 0 {
            return;
        }
        let pos = self
            .entries
            .binary_search_by_key(&rank_key(tree), rank_key)
            .unwrap_or_else(|pos| pos);
        if pos >= self.capacity {
            return;
        }
        self.entries.insert(pos, tree.clone());
        self.entries.truncate(self.capacity);
    }

    /// Merges another reservoir in: deduplicating union, re-ranked and
    /// truncated to this reservoir's capacity. Order-independent and
    /// lossless — `merge(shard_a, shard_b)` equals offering both shards'
    /// full streams to one reservoir.
    pub fn merge(&mut self, other: &ExemplarReservoir) {
        for tree in &other.entries {
            if self.entries.iter().any(|t| tree_key(t) == tree_key(tree)) {
                continue;
            }
            self.offer(tree);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{LookupOutcome, TracePurpose, TARGET_BYTES};

    fn record(lookup_id: u64, started_ms: u64, completed_ms: u64) -> LookupRecord {
        LookupRecord {
            lookup_id,
            target: [0x11; TARGET_BYTES],
            purpose: TracePurpose::Retrieve,
            outcome: LookupOutcome::ValueFound,
            hops: 2,
            messages: 3,
            responded: 3,
            started_ms,
            completed_ms,
        }
    }

    fn span(
        rpc_id: u64,
        sent_ms: u64,
        completed_ms: u64,
        outcome: SpanOutcome,
        compromised: bool,
        caused_by: Option<u64>,
    ) -> RpcSpan {
        RpcSpan {
            rpc_id,
            to_node: rpc_id as u32,
            to_compromised: compromised,
            sent_ms,
            completed_ms,
            outcome,
            caused_by,
        }
    }

    /// A three-hop chain with a timeout in the middle and an off-path
    /// straggler: 100..140 rtt, 140..640 timeout (compromised), 640..700
    /// rtt — total 600 ms plus 50 ms queue wait.
    fn chain_tree() -> TraceTree {
        TraceTree {
            record: record(9, 100, 700),
            queue_wait_ms: 50,
            spans: vec![
                span(1, 100, 140, SpanOutcome::Responded, false, None),
                span(2, 100, 180, SpanOutcome::Responded, false, None),
                span(3, 140, 640, SpanOutcome::TimedOut, true, Some(1)),
                span(4, 640, 700, SpanOutcome::Responded, true, Some(3)),
                span(5, 640, 700, SpanOutcome::Inflight, false, Some(3)),
            ],
            final_rpc: Some(4),
        }
    }

    #[test]
    fn critical_path_walks_causes_and_attributes_categories() {
        let tree = chain_tree();
        let cp = tree.critical_path();
        assert_eq!(cp.rpc_ids, vec![1, 3, 4]);
        assert_eq!(cp.attribution.queue_ms, 50);
        assert_eq!(cp.attribution.rtt_ms, 40 + 60);
        assert_eq!(cp.attribution.timeout_ms, 500);
        assert_eq!(cp.attribution.rtt_compromised_ms, 60);
        assert_eq!(cp.attribution.timeout_compromised_ms, 500);
        assert_eq!(cp.attribution.compromised_ms(), 560);
        assert_eq!(cp.attribution.total_ms(), 650);
        assert_eq!(tree.end_to_end_ms(), 650);
        assert!(tree.conserves());
    }

    #[test]
    fn empty_tree_conserves_trivially() {
        let tree = TraceTree {
            record: record(1, 500, 500),
            queue_wait_ms: 0,
            spans: Vec::new(),
            final_rpc: None,
        };
        let cp = tree.critical_path();
        assert!(cp.rpc_ids.is_empty());
        assert_eq!(cp.attribution.total_ms(), 0);
        assert!(tree.conserves());
    }

    fn quick_tree(lookup_id: u64, latency_ms: u64) -> TraceTree {
        TraceTree {
            record: record(lookup_id, 1_000, 1_000 + latency_ms),
            queue_wait_ms: 0,
            spans: Vec::new(),
            final_rpc: None,
        }
    }

    #[test]
    fn reservoir_keeps_worst_latencies_deterministically() {
        let mut r = ExemplarReservoir::new(2);
        for (id, lat) in [(1, 40), (2, 900), (3, 10), (4, 300)] {
            r.offer(&quick_tree(id, lat));
        }
        let picked: Vec<u64> = r.exemplars().iter().map(|t| t.record.lookup_id).collect();
        assert_eq!(picked, vec![2, 4], "worst first, rest dropped");
        // Equal latencies: lower lookup id wins the tie.
        let mut r = ExemplarReservoir::new(1);
        r.offer(&quick_tree(8, 100));
        r.offer(&quick_tree(5, 100));
        assert_eq!(r.exemplars()[0].record.lookup_id, 5);
    }

    #[test]
    fn merge_is_union_dedup_and_order_independent() {
        let trees: Vec<TraceTree> = (0..6).map(|i| quick_tree(i, i * 100)).collect();
        let mut single = ExemplarReservoir::new(3);
        for t in &trees {
            single.offer(t);
        }
        let mut a = ExemplarReservoir::new(3);
        let mut b = ExemplarReservoir::new(3);
        for (i, t) in trees.iter().enumerate() {
            if i % 2 == 0 {
                a.offer(t);
            } else {
                b.offer(t);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, single, "merge of shards equals the single stream");
        assert_eq!(ab, ba, "merge commutes");
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a, "merge is idempotent (dedup by identity)");
    }

    #[test]
    fn zero_capacity_reservoir_stays_empty() {
        let mut r = ExemplarReservoir::new(0);
        r.offer(&quick_tree(1, 10));
        assert!(r.is_empty());
    }
}
