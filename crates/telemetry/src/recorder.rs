//! Typed CSV emission: one writer, per-run column schemas.
//!
//! Every experiment runner emits one or more CSV files whose rows pair a
//! handful of label columns with numeric series. Before this module each
//! runner hand-rolled its own `String` + `writeln!` pair, which meant the
//! header and the row format string could silently drift apart (a column
//! added to one but not the other compiles fine and corrupts the CSV).
//! [`Recorder`] closes that hole: a run declares its schema once as a
//! column-name slice, and every row is a typed [`Cell`] slice checked
//! against that schema — a row with the wrong arity panics at the emission
//! site instead of producing a misaligned file.
//!
//! Formatting is part of the schema contract: [`Cell`] renders exactly like
//! the `format!` specifiers the hand-rolled writers used (`{}` for integers
//! and strings, `{:.prec$}` for floats), so porting a writer onto the
//! recorder is byte-identical for the same data. The golden-equivalence
//! suite in `kad_experiments` pins that property.
//!
//! # Example
//!
//! ```
//! use kad_telemetry::recorder::{Cell, Recorder};
//!
//! let mut rec = Recorder::new(&["strategy", "time_min", "kappa_min"]);
//! rec.row(&["eclipse".into(), Cell::f64(12.0, 1), 3u64.into()]);
//! assert_eq!(rec.finish(), "strategy,time_min,kappa_min\neclipse,12.0,3\n");
//! ```

use std::fmt;

/// One typed CSV cell. Integers and strings render as `{}`; floats carry
/// their precision so `{:.prec$}` formatting travels with the value.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// A label column (strategy, churn, policy, …) or a pre-rendered
    /// special value such as `never`.
    Text(String),
    /// An unsigned integer, rendered as `{}`.
    U64(u64),
    /// A float with an explicit decimal precision, rendered `{:.prec$}`.
    F64 {
        /// The value.
        value: f64,
        /// Decimal places.
        precision: usize,
    },
}

impl Cell {
    /// A float cell with `precision` decimal places.
    pub fn f64(value: f64, precision: usize) -> Cell {
        Cell::F64 { value, precision }
    }

    /// An optional float: `None` renders as the literal text `na` (the
    /// convention for means suppressed by cutoff pruning).
    pub fn opt_f64(value: Option<f64>, precision: usize) -> Cell {
        match value {
            Some(value) => Cell::F64 { value, precision },
            None => Cell::Text("na".to_string()),
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => f.write_str(s),
            Cell::U64(v) => write!(f, "{v}"),
            Cell::F64 { value, precision } => write!(f, "{value:.precision$}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Cell {
        Cell::U64(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Cell {
        Cell::U64(v as u64)
    }
}

impl From<u32> for Cell {
    fn from(v: u32) -> Cell {
        Cell::U64(u64::from(v))
    }
}

/// A schema-checked CSV writer: header emitted from the column list, every
/// row validated against it.
#[derive(Clone, Debug)]
pub struct Recorder {
    columns: usize,
    out: String,
}

impl Recorder {
    /// Starts a CSV with the given column names as its header line.
    pub fn new(columns: &[&str]) -> Recorder {
        let mut out = columns.join(",");
        out.push('\n');
        Recorder {
            columns: columns.len(),
            out,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics when the cell count does not match the schema — the bug the
    /// recorder exists to catch at the emission site.
    pub fn row(&mut self, cells: &[Cell]) {
        use fmt::Write as _;
        assert_eq!(
            cells.len(),
            self.columns,
            "row arity does not match the declared schema"
        );
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            let _ = write!(self.out, "{cell}");
        }
        self.out.push('\n');
    }

    /// The finished CSV (header + rows, trailing newline).
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_format_like_the_hand_rolled_writers() {
        assert_eq!(Cell::f64(0.5, 3).to_string(), format!("{:.3}", 0.5));
        assert_eq!(Cell::f64(120.0, 1).to_string(), format!("{:.1}", 120.0));
        assert_eq!(Cell::from(7u64).to_string(), format!("{}", 7u64));
        assert_eq!(Cell::from(7usize).to_string(), format!("{}", 7usize));
        assert_eq!(Cell::from("1/1").to_string(), "1/1");
    }

    #[test]
    fn header_and_rows_round_trip() {
        let mut rec = Recorder::new(&["a", "b"]);
        rec.row(&[Cell::from(1u64), Cell::f64(2.25, 2)]);
        rec.row(&["x".into(), Cell::from(0u64)]);
        assert_eq!(rec.finish(), "a,b\n1,2.25\nx,0\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut rec = Recorder::new(&["a", "b"]);
        rec.row(&[Cell::from(1u64)]);
    }
}
