//! Service-level telemetry instruments for the overlay simulations.
//!
//! The resilience paper argues that connection resilience `κ(D)` is a
//! *proxy* for the service the overlay delivers: whether lookups still
//! succeed and stored data stays reachable. This crate provides the
//! measurement side of that argument — dependency-free streaming
//! instruments that the protocol layer feeds and the experiment harness
//! reads:
//!
//! * [`histogram::LogHistogram`] — a log-bucketed histogram with exact
//!   counts for small values, percentile queries, and a
//!   [`histogram::LogHistogram::merge`] so parallel scenario runners can
//!   combine per-worker histograms without loss.
//! * [`trace`] — per-lookup trace records ([`trace::LookupRecord`]: target,
//!   purpose, hops, messages, simulated latency, outcome) and the
//!   [`trace::TelemetrySink`] hook the simulator emits them through. The
//!   default is a no-op ([`trace::NoopSink`]); simulations that do not
//!   install a sink pay one `Option` discriminant check per lookup.
//! * [`timeseries::MinuteSeries`] — windowed aggregation keyed by simulated
//!   minute, with the same merge-for-parallel-runners contract.
//! * [`family`] — labelled metric families in the Prometheus/libp2p
//!   `metrics` spirit: [`family::CounterFamily`] and
//!   [`family::HistogramFamily`] fan one logical metric out over a label
//!   set such as `(purpose, outcome, phase)`, with deterministic
//!   iteration order and the same lossless `merge()`.
//! * [`recorder::Recorder`] — schema-checked CSV emission: column names
//!   declared once, every row typed and arity-checked against them, so the
//!   header and the rows of an experiment's output can never drift apart.
//! * [`span`] — the observability side's wall-clock instrument: a
//!   hierarchical span profiler ([`span::SpanTimer`] guards aggregating
//!   into a [`span::SpanProfile`] keyed by static label paths, self/total
//!   time, lossless merge) that costs one thread-local `Option` check
//!   when no profile is installed.
//! * [`journal`] — a bounded structured event journal whose FNV-1a hash
//!   chain fingerprints the per-minute event sequence of a run
//!   ([`journal::MinuteSeal`] → `audit-chain.csv` → `repro audit`), with
//!   ring truncation always surfaced through
//!   [`journal::Journal::dropped_events`].
//! * [`tracetree`] — full simulated-time trace trees behind the flat
//!   records: per-RPC spans with causal parents
//!   ([`tracetree::RpcSpan`]), critical-path extraction whose
//!   rtt/timeout/queue attribution provably sums to the end-to-end
//!   latency ([`tracetree::TraceTree::critical_path`]), and the
//!   deterministic p99 exemplar reservoir
//!   ([`tracetree::ExemplarReservoir`]) with the same lossless
//!   order-independent merge contract.
//!
//! The crate is dependency-free (std only) on purpose: the instruments sit
//! on the lookup hot path, and keeping them self-contained makes the
//! overhead measurable (see the `perf_lookup` bench) and the arithmetic
//! auditable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod family;
pub mod histogram;
pub mod journal;
pub mod recorder;
pub mod span;
pub mod timeseries;
pub mod trace;
pub mod tracetree;

pub use family::{CounterFamily, HistogramFamily};
pub use histogram::LogHistogram;
pub use journal::{Journal, JournalEvent, MinuteSeal};
pub use recorder::{Cell, Recorder};
pub use span::{SpanProfile, SpanStats, SpanTimer};
pub use timeseries::{MinuteSeries, WindowStats};
pub use trace::{
    DefenseAction, FanoutSink, LookupOutcome, LookupRecord, NoopSink, TelemetrySink, TracePurpose,
    VecSink,
};
pub use tracetree::{
    Attribution, CriticalPath, ExemplarReservoir, RpcSpan, SpanOutcome, TraceTree,
};
