//! Labelled metric families: many instruments behind one name, keyed by a
//! label set.
//!
//! Production metrics surfaces (Prometheus, OpenMetrics, libp2p's
//! `metrics/src/kad.rs`) expose *families*: one logical metric — "lookup
//! latency", "lookups completed" — fanned out over a small set of label
//! values such as `(outcome, purpose, phase)`. The load harness needs the
//! same shape: per-minute latency histograms keyed by minute, completion
//! counters keyed by `(purpose, outcome, phase)`, and lossless merging so
//! parallel grid cells can aggregate per-worker families exactly.
//!
//! Two families cover both metric kinds:
//!
//! * [`CounterFamily<L>`] — monotone `u64` counters per label set;
//! * [`HistogramFamily<L>`] — one [`LogHistogram`] per label set.
//!
//! Label sets are any `Ord + Clone` value — tuples of enums, `&'static
//! str`s, or minute indices. Storage is a `BTreeMap`, so iteration order
//! is deterministic (CSV renderings of a family never depend on insertion
//! order) and lookup is `O(log families)` with a handful of families in
//! practice.
//!
//! Both families satisfy the merge-is-lossless contract the other
//! instruments pin: recording a stream into one family equals splitting
//! it across several and [`merge`](CounterFamily::merge)-ing them
//! (property-tested in `tests/proptests.rs`).
//!
//! # Example
//!
//! ```
//! use kad_telemetry::{CounterFamily, HistogramFamily};
//!
//! let mut completions: CounterFamily<(&str, &str)> = CounterFamily::new();
//! completions.inc(("retrieve", "value-found"));
//! completions.add(("retrieve", "value-missing"), 2);
//! assert_eq!(completions.get(&("retrieve", "value-found")), 1);
//! assert_eq!(completions.total(), 3);
//!
//! let mut latency: HistogramFamily<u64> = HistogramFamily::new();
//! latency.record(7, 120); // minute 7: a 120 ms lookup
//! latency.record(7, 480);
//! assert_eq!(latency.get(&7).map(|h| h.count()), Some(2));
//! ```

use crate::histogram::LogHistogram;
use std::collections::BTreeMap;

/// A family of monotone counters keyed by a label set (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterFamily<L: Ord + Clone> {
    counters: BTreeMap<L, u64>,
}

impl<L: Ord + Clone> Default for CounterFamily<L> {
    fn default() -> Self {
        CounterFamily::new()
    }
}

impl<L: Ord + Clone> CounterFamily<L> {
    /// Creates an empty family.
    pub fn new() -> Self {
        CounterFamily {
            counters: BTreeMap::new(),
        }
    }

    /// Increments the counter for `labels` by one.
    pub fn inc(&mut self, labels: L) {
        self.add(labels, 1);
    }

    /// Adds `n` to the counter for `labels` (creating it at 0 first).
    pub fn add(&mut self, labels: L, n: u64) {
        *self.counters.entry(labels).or_insert(0) += n;
    }

    /// The counter for `labels` (0 when never incremented).
    pub fn get(&self, labels: &L) -> u64 {
        self.counters.get(labels).copied().unwrap_or(0)
    }

    /// Sum over every label set.
    pub fn total(&self) -> u64 {
        self.counters.values().sum()
    }

    /// Number of distinct label sets observed.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no label set was ever observed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterates `(labels, count)` in label order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&L, u64)> + '_ {
        self.counters.iter().map(|(l, &c)| (l, c))
    }

    /// Merges another family into this one: per-label counts add, so
    /// merging sharded families equals single-stream recording.
    pub fn merge(&mut self, other: &CounterFamily<L>) {
        for (labels, &count) in &other.counters {
            self.add(labels.clone(), count);
        }
    }
}

/// A family of [`LogHistogram`]s keyed by a label set (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramFamily<L: Ord + Clone> {
    histograms: BTreeMap<L, LogHistogram>,
}

impl<L: Ord + Clone> Default for HistogramFamily<L> {
    fn default() -> Self {
        HistogramFamily::new()
    }
}

impl<L: Ord + Clone> HistogramFamily<L> {
    /// Creates an empty family.
    pub fn new() -> Self {
        HistogramFamily {
            histograms: BTreeMap::new(),
        }
    }

    /// Records one sample into the histogram for `labels` (creating an
    /// empty histogram first if the label set is new).
    pub fn record(&mut self, labels: L, value: u64) {
        self.histograms.entry(labels).or_default().record(value);
    }

    /// The histogram for `labels`, if any sample was ever recorded there.
    pub fn get(&self, labels: &L) -> Option<&LogHistogram> {
        self.histograms.get(labels)
    }

    /// Number of distinct label sets observed.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// Whether no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// Total samples across every label set.
    pub fn total_count(&self) -> u64 {
        self.histograms.values().map(LogHistogram::count).sum()
    }

    /// Iterates `(labels, histogram)` in label order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&L, &LogHistogram)> + '_ {
        self.histograms.iter()
    }

    /// One histogram over every label set's samples (lossless: bucket
    /// counts add). The "no labels" rollup a summary row wants.
    pub fn merged(&self) -> LogHistogram {
        let mut all = LogHistogram::new();
        for h in self.histograms.values() {
            all.merge(h);
        }
        all
    }

    /// A rollup over the label subset selected by `keep`: every selected
    /// histogram merged into one. Used for windowed percentiles (e.g.
    /// "all minutes in the attack phase").
    pub fn merged_where(&self, mut keep: impl FnMut(&L) -> bool) -> LogHistogram {
        let mut all = LogHistogram::new();
        for (labels, h) in &self.histograms {
            if keep(labels) {
                all.merge(h);
            }
        }
        all
    }

    /// Merges another family into this one: per-label histograms merge
    /// losslessly, so merging sharded families equals single-stream
    /// recording.
    pub fn merge(&mut self, other: &HistogramFamily<L>) {
        for (labels, h) in &other.histograms {
            self.histograms.entry(labels.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_family_basics() {
        let mut f: CounterFamily<(&str, &str)> = CounterFamily::new();
        assert!(f.is_empty());
        assert_eq!(f.get(&("locate", "converged")), 0);
        f.inc(("locate", "converged"));
        f.inc(("locate", "converged"));
        f.add(("locate", "failed"), 3);
        assert_eq!(f.get(&("locate", "converged")), 2);
        assert_eq!(f.get(&("locate", "failed")), 3);
        assert_eq!(f.total(), 5);
        assert_eq!(f.len(), 2);
        // Iteration is in label order, not insertion order.
        let labels: Vec<&(&str, &str)> = f.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, [&("locate", "converged"), &("locate", "failed")]);
    }

    #[test]
    fn counter_merge_adds_per_label() {
        let mut a: CounterFamily<u64> = CounterFamily::new();
        a.add(1, 2);
        a.add(2, 5);
        let mut b: CounterFamily<u64> = CounterFamily::new();
        b.add(2, 1);
        b.add(3, 7);
        a.merge(&b);
        assert_eq!(a.get(&1), 2);
        assert_eq!(a.get(&2), 6);
        assert_eq!(a.get(&3), 7);
        assert_eq!(a.total(), 15);
    }

    #[test]
    fn histogram_family_basics() {
        let mut f: HistogramFamily<u64> = HistogramFamily::new();
        assert!(f.is_empty());
        assert!(f.get(&0).is_none());
        f.record(3, 10);
        f.record(3, 20);
        f.record(4, 30);
        assert_eq!(f.len(), 2);
        assert_eq!(f.total_count(), 3);
        assert_eq!(f.get(&3).map(|h| h.count()), Some(2));
        let all = f.merged();
        assert_eq!(all.count(), 3);
        assert_eq!(all.max(), 30);
        let windowed = f.merged_where(|&m| m >= 4);
        assert_eq!(windowed.count(), 1);
        assert_eq!(windowed.min(), 30);
    }

    #[test]
    fn histogram_merge_equals_single_stream() {
        let samples = [(1u64, 5u64), (1, 9), (2, 100), (2, 5), (1, 63)];
        let mut all: HistogramFamily<u64> = HistogramFamily::new();
        let mut left: HistogramFamily<u64> = HistogramFamily::new();
        let mut right: HistogramFamily<u64> = HistogramFamily::new();
        for (i, &(m, v)) in samples.iter().enumerate() {
            all.record(m, v);
            if i % 2 == 0 {
                left.record(m, v);
            } else {
                right.record(m, v);
            }
        }
        left.merge(&right);
        assert_eq!(left, all);
    }
}
