//! Bounded structured event journal with a per-minute determinism
//! fingerprint.
//!
//! Two supposedly-identical runs that diverge somewhere in a 90-minute
//! grid are miserable to debug from final CSVs: the divergence is visible
//! only after it has propagated through every downstream metric. The
//! journal solves this the way deterministic-replay debuggers do — record
//! the *event sequence* itself, cheaply, and fingerprint it incrementally:
//!
//! * **Events.** Every session-engine-visible occurrence — joins, churn
//!   departures, compromises, defense actions, terminating lookups,
//!   scheduled harness actions — is one [`JournalEvent`].
//! * **Hash chain.** Each recorded event is folded into a running
//!   [FNV-1a] 64-bit chain over a fixed, seed-independent byte encoding
//!   (the *format* never depends on the seed; the *values* do — that is
//!   the point). [`Journal::seal_minute`] checkpoints `(minute, events
//!   so far, chain)` as a [`MinuteSeal`]; the seals become
//!   `audit-chain.csv`, and diffing two runs' seal sequences names the
//!   first divergent (cell, minute) exactly — `repro audit` is that diff.
//! * **Bounded ring, accounted truncation.** The journal keeps at most
//!   `capacity` raw events (a debugging tail, not an unbounded log).
//!   Overflow drops the *oldest* event **after** it was folded into the
//!   chain and counted, and increments [`Journal::dropped_events`] — the
//!   fingerprint and the per-kind counts cover every event ever
//!   recorded; only the raw tail is truncated, and never silently.
//!
//! The journal implements [`TelemetrySink`], so installing
//! `Rc<RefCell<Journal>>` (via the blanket sink impl) captures lookup
//! terminations and defense actions with no extra adapter.
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/
//!
//! # Example
//!
//! ```
//! use kad_telemetry::journal::{Journal, JournalEvent};
//!
//! let mut a = Journal::new();
//! let mut b = Journal::new();
//! for j in [&mut a, &mut b] {
//!     j.record(JournalEvent::Join { minute: 0, node: 7 });
//!     j.seal_minute(0);
//! }
//! assert_eq!(a.seals(), b.seals(), "same events, same chain");
//! b.record(JournalEvent::Churn { minute: 1, node: 7 });
//! b.seal_minute(1);
//! a.seal_minute(1);
//! assert_ne!(a.seals()[1], b.seals()[1], "divergence shows in minute 1");
//! ```

use crate::family::CounterFamily;
use crate::trace::{DefenseAction, LookupOutcome, LookupRecord, TelemetrySink, TracePurpose};
use std::collections::VecDeque;

/// Default raw-event ring capacity (the chain and counts are unaffected
/// by capacity — see module docs).
pub const DEFAULT_CAPACITY: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One recorded occurrence. Every variant encodes to a fixed byte layout
/// (tag byte + little-endian fields) for the hash chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalEvent {
    /// A node joined the overlay (harness join schedule).
    Join {
        /// Minute of the session clock.
        minute: u64,
        /// The joining node's address index.
        node: u32,
    },
    /// A node departed silently (churn).
    Churn {
        /// Minute of the session clock.
        minute: u64,
        /// The departing node's address index.
        node: u32,
    },
    /// The attacker scheduled a compromise of a victim.
    Compromise {
        /// Minute of the session clock.
        minute: u64,
        /// The victim's address index.
        node: u32,
    },
    /// A defense policy acted (probe, eviction, repair, …).
    Defense {
        /// The action taken.
        action: DefenseAction,
    },
    /// A lookup terminated (the service-level event stream).
    Lookup {
        /// Why the lookup ran.
        purpose: TracePurpose,
        /// How it ended.
        outcome: LookupOutcome,
        /// Hop depth reached.
        hops: u32,
        /// Simulated completion instant (milliseconds).
        completed_ms: u64,
    },
    /// A harness action was applied inside the minute loop.
    Action {
        /// Minute of the session clock.
        minute: u64,
        /// Simulated instant the action applied at (milliseconds).
        at_ms: u64,
        /// Static action-kind label (`"lookup"`, `"store"`, …).
        kind: &'static str,
    },
}

impl JournalEvent {
    /// Static label naming the variant (the per-kind count key and the
    /// `metrics.prom` label value).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::Join { .. } => "join",
            JournalEvent::Churn { .. } => "churn",
            JournalEvent::Compromise { .. } => "compromise",
            JournalEvent::Defense { .. } => "defense",
            JournalEvent::Lookup { .. } => "lookup",
            JournalEvent::Action { .. } => "action",
        }
    }

    /// Folds the event's fixed byte encoding into an FNV-1a chain value.
    fn fold_into(&self, chain: u64) -> u64 {
        // Fixed layout: tag byte, then little-endian fields in order.
        let mut bytes: Vec<u8> = Vec::with_capacity(24);
        match *self {
            JournalEvent::Join { minute, node } => {
                bytes.push(1);
                bytes.extend_from_slice(&minute.to_le_bytes());
                bytes.extend_from_slice(&node.to_le_bytes());
            }
            JournalEvent::Churn { minute, node } => {
                bytes.push(2);
                bytes.extend_from_slice(&minute.to_le_bytes());
                bytes.extend_from_slice(&node.to_le_bytes());
            }
            JournalEvent::Compromise { minute, node } => {
                bytes.push(3);
                bytes.extend_from_slice(&minute.to_le_bytes());
                bytes.extend_from_slice(&node.to_le_bytes());
            }
            JournalEvent::Defense { action } => {
                bytes.push(4);
                bytes.push(action as u8);
            }
            JournalEvent::Lookup {
                purpose,
                outcome,
                hops,
                completed_ms,
            } => {
                bytes.push(5);
                bytes.push(purpose as u8);
                bytes.push(outcome as u8);
                bytes.extend_from_slice(&hops.to_le_bytes());
                bytes.extend_from_slice(&completed_ms.to_le_bytes());
            }
            JournalEvent::Action {
                minute,
                at_ms,
                kind,
            } => {
                bytes.push(6);
                bytes.extend_from_slice(&minute.to_le_bytes());
                bytes.extend_from_slice(&at_ms.to_le_bytes());
                bytes.extend_from_slice(kind.as_bytes());
            }
        }
        bytes.iter().fold(chain, |acc, &b| {
            (acc ^ u64::from(b)).wrapping_mul(FNV_PRIME)
        })
    }
}

/// One per-minute checkpoint of the chain: the `audit-chain.csv` row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinuteSeal {
    /// The sealed minute.
    pub minute: u64,
    /// Events recorded since the journal was created (cumulative).
    pub events: u64,
    /// Chain value after the last event of this minute.
    pub chain: u64,
}

/// The bounded journal (see module docs).
#[derive(Clone, Debug)]
pub struct Journal {
    capacity: usize,
    ring: VecDeque<JournalEvent>,
    recorded_events: u64,
    dropped_events: u64,
    counts: CounterFamily<&'static str>,
    chain: u64,
    seals: Vec<MinuteSeal>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// Creates a journal with the [`DEFAULT_CAPACITY`] raw-event ring.
    pub fn new() -> Self {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a journal keeping at most `capacity` raw events.
    pub fn with_capacity(capacity: usize) -> Self {
        Journal {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            recorded_events: 0,
            dropped_events: 0,
            counts: CounterFamily::new(),
            chain: FNV_OFFSET,
            seals: Vec::new(),
        }
    }

    /// Records one event: folds it into the chain, counts it per kind,
    /// then appends it to the ring (dropping — and accounting — the
    /// oldest raw event on overflow).
    pub fn record(&mut self, event: JournalEvent) {
        self.chain = event.fold_into(self.chain);
        self.recorded_events += 1;
        self.counts.inc(event.kind());
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped_events += 1;
        }
        self.ring.push_back(event);
    }

    /// Checkpoints the chain at the end of `minute`.
    pub fn seal_minute(&mut self, minute: u64) {
        self.seals.push(MinuteSeal {
            minute,
            events: self.recorded_events,
            chain: self.chain,
        });
    }

    /// The per-minute checkpoints, in seal order.
    pub fn seals(&self) -> &[MinuteSeal] {
        &self.seals
    }

    /// Current chain value (also the value the next seal would record).
    pub fn chain(&self) -> u64 {
        self.chain
    }

    /// Events recorded since creation (never decreases on truncation).
    pub fn recorded_events(&self) -> u64 {
        self.recorded_events
    }

    /// Raw events evicted from the ring. `recorded - dropped` events are
    /// still inspectable through [`Journal::events`].
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// Per-kind event counts (covers dropped events too).
    pub fn counts(&self) -> &CounterFamily<&'static str> {
        &self.counts
    }

    /// The retained raw-event tail, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &JournalEvent> + '_ {
        self.ring.iter()
    }
}

impl TelemetrySink for Journal {
    fn on_lookup(&mut self, record: &LookupRecord) {
        self.record(JournalEvent::Lookup {
            purpose: record.purpose,
            outcome: record.outcome,
            hops: record.hops,
            completed_ms: record.completed_ms,
        });
    }

    fn on_defense(&mut self, action: DefenseAction) {
        self.record(JournalEvent::Defense { action });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<JournalEvent> {
        vec![
            JournalEvent::Join { minute: 0, node: 1 },
            JournalEvent::Join { minute: 0, node: 2 },
            JournalEvent::Action {
                minute: 1,
                at_ms: 61_000,
                kind: "lookup",
            },
            JournalEvent::Lookup {
                purpose: TracePurpose::Locate,
                outcome: LookupOutcome::Converged,
                hops: 3,
                completed_ms: 61_850,
            },
            JournalEvent::Churn { minute: 2, node: 1 },
            JournalEvent::Compromise { minute: 2, node: 2 },
            JournalEvent::Defense {
                action: DefenseAction::Eviction,
            },
        ]
    }

    #[test]
    fn identical_event_sequences_chain_identically() {
        let mut a = Journal::new();
        let mut b = Journal::new();
        for event in sample_events() {
            a.record(event.clone());
            b.record(event);
        }
        a.seal_minute(0);
        b.seal_minute(0);
        assert_eq!(a.chain(), b.chain());
        assert_eq!(a.seals(), b.seals());
    }

    #[test]
    fn any_divergence_changes_the_chain() {
        let events = sample_events();
        let chain_of = |events: &[JournalEvent]| {
            let mut j = Journal::new();
            for e in events {
                j.record(e.clone());
            }
            j.chain()
        };
        let baseline = chain_of(&events);
        // Drop one event, swap two, or mutate one field: all distinct.
        let mut dropped = events.clone();
        dropped.remove(3);
        assert_ne!(chain_of(&dropped), baseline);
        let mut swapped = events.clone();
        swapped.swap(0, 1);
        assert_ne!(chain_of(&swapped), baseline);
        let mut mutated = events.clone();
        mutated[4] = JournalEvent::Churn { minute: 2, node: 3 };
        assert_ne!(chain_of(&mutated), baseline);
    }

    #[test]
    fn seals_checkpoint_cumulative_counts() {
        let mut j = Journal::new();
        j.record(JournalEvent::Join { minute: 0, node: 0 });
        j.seal_minute(0);
        j.record(JournalEvent::Churn { minute: 1, node: 0 });
        j.record(JournalEvent::Compromise { minute: 1, node: 1 });
        j.seal_minute(1);
        let seals = j.seals();
        assert_eq!(seals.len(), 2);
        assert_eq!((seals[0].minute, seals[0].events), (0, 1));
        assert_eq!((seals[1].minute, seals[1].events), (1, 3));
        assert_ne!(seals[0].chain, seals[1].chain);
    }

    #[test]
    fn truncation_is_accounted_and_chain_covers_dropped_events() {
        let mut big = Journal::new();
        let mut small = Journal::with_capacity(2);
        for minute in 0..10u64 {
            let event = JournalEvent::Join {
                minute,
                node: minute as u32,
            };
            big.record(event.clone());
            small.record(event);
        }
        assert_eq!(small.recorded_events(), 10);
        assert_eq!(small.dropped_events(), 8, "overflow surfaced, not silent");
        assert_eq!(small.events().count(), 2, "only the tail retained");
        assert_eq!(
            small.events().next(),
            Some(&JournalEvent::Join { minute: 8, node: 8 }),
            "oldest events were the ones dropped"
        );
        assert_eq!(
            small.chain(),
            big.chain(),
            "the fingerprint covers every event ever recorded"
        );
        assert_eq!(small.counts().get(&"join"), 10, "counts cover drops too");
        assert_eq!(big.dropped_events(), 0);
    }

    #[test]
    fn sink_impl_records_lookups_and_defense_actions() {
        let mut j = Journal::new();
        j.on_lookup(&LookupRecord {
            lookup_id: 9,
            target: [0; 20],
            purpose: TracePurpose::Retrieve,
            outcome: LookupOutcome::ValueFound,
            hops: 2,
            messages: 6,
            responded: 4,
            started_ms: 100,
            completed_ms: 450,
        });
        j.on_defense(DefenseAction::Probe);
        assert_eq!(j.recorded_events(), 2);
        assert_eq!(j.counts().get(&"lookup"), 1);
        assert_eq!(j.counts().get(&"defense"), 1);
        let kinds: Vec<&'static str> = j.events().map(JournalEvent::kind).collect();
        assert_eq!(kinds, ["lookup", "defense"]);
    }
}
