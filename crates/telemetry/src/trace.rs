//! Per-lookup trace records and the sink the simulator emits them through.
//!
//! The protocol layer knows everything a service-level metric needs — how
//! many hops a lookup took, how many RPCs it cost, whether it converged —
//! but the analysis layer must not live inside the protocol crate. The
//! [`TelemetrySink`] trait is the seam: the simulator calls
//! [`TelemetrySink::on_lookup`] once per completed lookup with a
//! [`LookupRecord`]; experiment harnesses install whatever sink they need
//! (aggregating, recording, forwarding). Simulations that install nothing
//! use [`NoopSink`] semantics and pay a single `Option` check per lookup.

/// Why a lookup ran. Mirrors the protocol layer's lookup purposes but
/// stays independent of it so this crate remains dependency-free.
/// `Ord` (declaration order) so purposes can key metric families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePurpose {
    /// Data-traffic lookup: locate the k closest nodes to a target.
    Locate,
    /// Dissemination: locate the k closest, then STORE on them.
    Disseminate,
    /// Value retrieval: locate the key and ask holders for it.
    Retrieve,
    /// Maintenance: periodic bucket-refresh lookup.
    Refresh,
    /// Maintenance: the self-lookup performed on join.
    Bootstrap,
    /// Defense: a self-healing repair lookup launched after a neighbor
    /// was evicted, targeting the lost contact's id region.
    Repair,
    /// A disjoint-path retrieval group: `d` independent sub-lookups over
    /// disjoint candidate sets, reported as **one** record once every
    /// path terminated (value-withholding countermeasure).
    RetrieveDisjoint,
}

impl TracePurpose {
    /// Short label for CSV cells and series names.
    pub fn label(&self) -> &'static str {
        match self {
            TracePurpose::Locate => "locate",
            TracePurpose::Disseminate => "disseminate",
            TracePurpose::Retrieve => "retrieve",
            TracePurpose::Refresh => "refresh",
            TracePurpose::Bootstrap => "bootstrap",
            TracePurpose::Repair => "repair",
            TracePurpose::RetrieveDisjoint => "retrieve-disjoint",
        }
    }
}

/// A defense-subsystem event, emitted through
/// [`TelemetrySink::on_defense`] so harnesses can account per-policy
/// activity (and its message overhead) without reaching into the
/// simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DefenseAction {
    /// A liveness-probe PING sent by an eviction policy.
    Probe,
    /// A stale contact was evicted after consecutive failures.
    Eviction,
    /// A self-healing repair lookup was launched for a lost neighbor.
    Repair,
    /// A routing-table insert was rejected by a diversity cap.
    DiversityReject,
    /// An overrepresented contact was replaced to admit a diverse one.
    DiversityReplace,
}

impl DefenseAction {
    /// All actions, in presentation order.
    pub const ALL: [DefenseAction; 5] = [
        DefenseAction::Probe,
        DefenseAction::Eviction,
        DefenseAction::Repair,
        DefenseAction::DiversityReject,
        DefenseAction::DiversityReplace,
    ];

    /// Short label for CSV cells.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseAction::Probe => "probe",
            DefenseAction::Eviction => "eviction",
            DefenseAction::Repair => "repair",
            DefenseAction::DiversityReject => "diversity-reject",
            DefenseAction::DiversityReplace => "diversity-replace",
        }
    }
}

/// How a lookup ended. `Ord` (declaration order) so outcomes can key
/// metric families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LookupOutcome {
    /// `k` nodes responded — the lookup fully converged.
    Converged,
    /// Some nodes responded, but fewer than `k` and no candidates remain.
    Partial,
    /// Not a single node responded.
    Failed,
    /// A retrieval found the value.
    ValueFound,
    /// A retrieval exhausted its candidates without finding the value.
    ValueMissing,
}

impl LookupOutcome {
    /// Whether the lookup delivered its service: full convergence for
    /// locate/disseminate-style lookups, a value hit for retrievals.
    pub fn is_success(&self) -> bool {
        matches!(self, LookupOutcome::Converged | LookupOutcome::ValueFound)
    }

    /// Short label for CSV cells.
    pub fn label(&self) -> &'static str {
        match self {
            LookupOutcome::Converged => "converged",
            LookupOutcome::Partial => "partial",
            LookupOutcome::Failed => "failed",
            LookupOutcome::ValueFound => "value-found",
            LookupOutcome::ValueMissing => "value-missing",
        }
    }
}

/// Byte length of a trace target (matches the protocol's 160-bit ids).
pub const TARGET_BYTES: usize = 20;

/// One completed lookup, as observed by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupRecord {
    /// The simulator-unique lookup id.
    pub lookup_id: u64,
    /// The lookup target / key, big-endian (the protocol's id bytes).
    pub target: [u8; TARGET_BYTES],
    /// Why the lookup ran.
    pub purpose: TracePurpose,
    /// How it ended.
    pub outcome: LookupOutcome,
    /// Hop depth of the closest responding node: seeds from the local
    /// routing table are hop 1, contacts learned from a hop-`h` response
    /// are hop `h + 1`. 0 when nothing responded.
    pub hops: u32,
    /// FIND_NODE / FIND_VALUE RPCs this lookup sent.
    pub messages: u32,
    /// Nodes that responded before termination.
    pub responded: u32,
    /// Simulated start time in milliseconds.
    pub started_ms: u64,
    /// Simulated completion time in milliseconds.
    pub completed_ms: u64,
}

impl LookupRecord {
    /// Simulated wall time the lookup took, in milliseconds.
    pub fn latency_ms(&self) -> u64 {
        self.completed_ms.saturating_sub(self.started_ms)
    }

    /// The simulated minute the lookup completed in — the key used by
    /// [`crate::MinuteSeries`].
    pub fn completed_minute(&self) -> u64 {
        self.completed_ms / 60_000
    }
}

/// Receiver for trace events. The simulator holds the sink as a trait
/// object and calls it from the event loop; implementations should be
/// O(1) per event (aggregate, don't analyse).
pub trait TelemetrySink {
    /// Called once when a lookup terminates (converges, exhausts its
    /// candidates, or finds its value).
    fn on_lookup(&mut self, record: &LookupRecord);

    /// Called once per defense-subsystem event (probe sent, contact
    /// evicted, repair launched, diversity decision). Defaults to a
    /// no-op so plain service sinks need not care.
    fn on_defense(&mut self, action: DefenseAction) {
        let _ = action;
    }

    /// Whether this sink wants full [`crate::TraceTree`]s. The simulator
    /// asks once at install time and only pays the per-RPC span-buffer
    /// cost when some installed sink answers `true`; flat-record sinks
    /// keep the default and cost nothing extra.
    fn wants_traces(&self) -> bool {
        false
    }

    /// Called once per terminated lookup with its full trace tree,
    /// immediately after [`on_lookup`](TelemetrySink::on_lookup) — but
    /// only when [`wants_traces`](TelemetrySink::wants_traces) was `true`
    /// at install time. Defaults to a no-op.
    fn on_trace(&mut self, tree: &crate::TraceTree) {
        let _ = tree;
    }
}

/// Sharing a sink between the simulator (which owns it as a boxed trait
/// object) and the harness that reads the aggregates afterwards: any sink
/// works behind `Rc<RefCell<_>>`, so harnesses keep one handle and hand
/// the simulator a clone.
///
/// ```
/// use kad_telemetry::{TelemetrySink, VecSink};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let shared = Rc::new(RefCell::new(VecSink::default()));
/// let for_simulator: Box<dyn TelemetrySink> = Box::new(Rc::clone(&shared));
/// drop(for_simulator);
/// assert!(shared.borrow().records.is_empty());
/// ```
impl<S: TelemetrySink> TelemetrySink for std::rc::Rc<std::cell::RefCell<S>> {
    fn on_lookup(&mut self, record: &LookupRecord) {
        self.borrow_mut().on_lookup(record);
    }

    fn on_defense(&mut self, action: DefenseAction) {
        self.borrow_mut().on_defense(action);
    }

    fn wants_traces(&self) -> bool {
        self.borrow().wants_traces()
    }

    fn on_trace(&mut self, tree: &crate::TraceTree) {
        self.borrow_mut().on_trace(tree);
    }
}

/// Fans every event out to several sinks, in order. Harnesses that need
/// two independent aggregations over one run (the service recorder plus a
/// load recorder, say) compose them here instead of writing a combined
/// sink; with a single inner sink the forwarding is observationally
/// identical to installing that sink directly.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn TelemetrySink>>,
}

impl FanoutSink {
    /// A fanout over the given sinks (events delivered in vec order).
    pub fn new(sinks: Vec<Box<dyn TelemetrySink>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl TelemetrySink for FanoutSink {
    fn on_lookup(&mut self, record: &LookupRecord) {
        for sink in &mut self.sinks {
            sink.on_lookup(record);
        }
    }

    fn on_defense(&mut self, action: DefenseAction) {
        for sink in &mut self.sinks {
            sink.on_defense(action);
        }
    }

    fn wants_traces(&self) -> bool {
        self.sinks.iter().any(|sink| sink.wants_traces())
    }

    fn on_trace(&mut self, tree: &crate::TraceTree) {
        for sink in &mut self.sinks {
            sink.on_trace(tree);
        }
    }
}

/// A sink that discards everything — the semantics of running with no sink
/// installed. Exists so benches can measure the dispatch cost itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn on_lookup(&mut self, _record: &LookupRecord) {}
}

/// A sink that stores every record, for tests and benches. Wants traces,
/// so installing one also exercises the simulator's span-recording path.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The records received, in completion order.
    pub records: Vec<LookupRecord>,
    /// The defense events received, in emission order.
    pub defense: Vec<DefenseAction>,
    /// The trace trees received, in completion order.
    pub traces: Vec<crate::TraceTree>,
}

impl TelemetrySink for VecSink {
    fn on_lookup(&mut self, record: &LookupRecord) {
        self.records.push(*record);
    }

    fn on_defense(&mut self, action: DefenseAction) {
        self.defense.push(action);
    }

    fn wants_traces(&self) -> bool {
        true
    }

    fn on_trace(&mut self, tree: &crate::TraceTree) {
        self.traces.push(tree.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(purpose: TracePurpose, outcome: LookupOutcome) -> LookupRecord {
        LookupRecord {
            lookup_id: 7,
            target: [0xAB; TARGET_BYTES],
            purpose,
            outcome,
            hops: 3,
            messages: 9,
            responded: 8,
            started_ms: 61_000,
            completed_ms: 62_500,
        }
    }

    #[test]
    fn latency_and_minute() {
        let r = record(TracePurpose::Locate, LookupOutcome::Converged);
        assert_eq!(r.latency_ms(), 1_500);
        assert_eq!(r.completed_minute(), 1);
    }

    #[test]
    fn success_classification() {
        assert!(LookupOutcome::Converged.is_success());
        assert!(LookupOutcome::ValueFound.is_success());
        assert!(!LookupOutcome::Partial.is_success());
        assert!(!LookupOutcome::Failed.is_success());
        assert!(!LookupOutcome::ValueMissing.is_success());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TracePurpose::Retrieve.label(), "retrieve");
        assert_eq!(TracePurpose::Repair.label(), "repair");
        assert_eq!(TracePurpose::RetrieveDisjoint.label(), "retrieve-disjoint");
        assert_eq!(LookupOutcome::ValueMissing.label(), "value-missing");
        assert_eq!(DefenseAction::DiversityReject.label(), "diversity-reject");
    }

    #[test]
    fn defense_events_flow_through_sinks() {
        let mut vec_sink = VecSink::default();
        vec_sink.on_defense(DefenseAction::Probe);
        vec_sink.on_defense(DefenseAction::Eviction);
        assert_eq!(
            vec_sink.defense,
            vec![DefenseAction::Probe, DefenseAction::Eviction]
        );
        // The default impl is a no-op: NoopSink accepts them too.
        let mut noop = NoopSink;
        noop.on_defense(DefenseAction::Repair);
        // And the Rc<RefCell<_>> blanket forwards them.
        use std::cell::RefCell;
        use std::rc::Rc;
        let shared = Rc::new(RefCell::new(VecSink::default()));
        let mut handle: Box<dyn TelemetrySink> = Box::new(Rc::clone(&shared));
        handle.on_defense(DefenseAction::DiversityReplace);
        drop(handle);
        assert_eq!(
            shared.borrow().defense,
            vec![DefenseAction::DiversityReplace]
        );
    }

    #[test]
    fn shared_rc_refcell_sink_delegates() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let shared = Rc::new(RefCell::new(VecSink::default()));
        let mut handle: Box<dyn TelemetrySink> = Box::new(Rc::clone(&shared));
        handle.on_lookup(&record(TracePurpose::Locate, LookupOutcome::Converged));
        drop(handle);
        assert_eq!(shared.borrow().records.len(), 1);
    }

    #[test]
    fn fanout_delivers_to_every_sink_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let a = Rc::new(RefCell::new(VecSink::default()));
        let b = Rc::new(RefCell::new(VecSink::default()));
        let mut fanout = FanoutSink::new(vec![Box::new(Rc::clone(&a)), Box::new(Rc::clone(&b))]);
        fanout.on_lookup(&record(TracePurpose::Retrieve, LookupOutcome::ValueFound));
        fanout.on_defense(DefenseAction::Probe);
        drop(fanout);
        for sink in [&a, &b] {
            assert_eq!(sink.borrow().records.len(), 1);
            assert_eq!(sink.borrow().defense, vec![DefenseAction::Probe]);
        }
    }

    #[test]
    fn sinks_receive_records() {
        let mut noop = NoopSink;
        noop.on_lookup(&record(TracePurpose::Refresh, LookupOutcome::Partial));
        let mut vec_sink = VecSink::default();
        vec_sink.on_lookup(&record(TracePurpose::Locate, LookupOutcome::Failed));
        vec_sink.on_lookup(&record(TracePurpose::Retrieve, LookupOutcome::ValueFound));
        assert_eq!(vec_sink.records.len(), 2);
        assert_eq!(vec_sink.records[1].outcome, LookupOutcome::ValueFound);
    }
}
