//! Per-lookup trace records and the sink the simulator emits them through.
//!
//! The protocol layer knows everything a service-level metric needs — how
//! many hops a lookup took, how many RPCs it cost, whether it converged —
//! but the analysis layer must not live inside the protocol crate. The
//! [`TelemetrySink`] trait is the seam: the simulator calls
//! [`TelemetrySink::on_lookup`] once per completed lookup with a
//! [`LookupRecord`]; experiment harnesses install whatever sink they need
//! (aggregating, recording, forwarding). Simulations that install nothing
//! use [`NoopSink`] semantics and pay a single `Option` check per lookup.

/// Why a lookup ran. Mirrors the protocol layer's lookup purposes but
/// stays independent of it so this crate remains dependency-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TracePurpose {
    /// Data-traffic lookup: locate the k closest nodes to a target.
    Locate,
    /// Dissemination: locate the k closest, then STORE on them.
    Disseminate,
    /// Value retrieval: locate the key and ask holders for it.
    Retrieve,
    /// Maintenance: periodic bucket-refresh lookup.
    Refresh,
    /// Maintenance: the self-lookup performed on join.
    Bootstrap,
}

impl TracePurpose {
    /// Short label for CSV cells and series names.
    pub fn label(&self) -> &'static str {
        match self {
            TracePurpose::Locate => "locate",
            TracePurpose::Disseminate => "disseminate",
            TracePurpose::Retrieve => "retrieve",
            TracePurpose::Refresh => "refresh",
            TracePurpose::Bootstrap => "bootstrap",
        }
    }
}

/// How a lookup ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LookupOutcome {
    /// `k` nodes responded — the lookup fully converged.
    Converged,
    /// Some nodes responded, but fewer than `k` and no candidates remain.
    Partial,
    /// Not a single node responded.
    Failed,
    /// A retrieval found the value.
    ValueFound,
    /// A retrieval exhausted its candidates without finding the value.
    ValueMissing,
}

impl LookupOutcome {
    /// Whether the lookup delivered its service: full convergence for
    /// locate/disseminate-style lookups, a value hit for retrievals.
    pub fn is_success(&self) -> bool {
        matches!(self, LookupOutcome::Converged | LookupOutcome::ValueFound)
    }

    /// Short label for CSV cells.
    pub fn label(&self) -> &'static str {
        match self {
            LookupOutcome::Converged => "converged",
            LookupOutcome::Partial => "partial",
            LookupOutcome::Failed => "failed",
            LookupOutcome::ValueFound => "value-found",
            LookupOutcome::ValueMissing => "value-missing",
        }
    }
}

/// Byte length of a trace target (matches the protocol's 160-bit ids).
pub const TARGET_BYTES: usize = 20;

/// One completed lookup, as observed by the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LookupRecord {
    /// The simulator-unique lookup id.
    pub lookup_id: u64,
    /// The lookup target / key, big-endian (the protocol's id bytes).
    pub target: [u8; TARGET_BYTES],
    /// Why the lookup ran.
    pub purpose: TracePurpose,
    /// How it ended.
    pub outcome: LookupOutcome,
    /// Hop depth of the closest responding node: seeds from the local
    /// routing table are hop 1, contacts learned from a hop-`h` response
    /// are hop `h + 1`. 0 when nothing responded.
    pub hops: u32,
    /// FIND_NODE / FIND_VALUE RPCs this lookup sent.
    pub messages: u32,
    /// Nodes that responded before termination.
    pub responded: u32,
    /// Simulated start time in milliseconds.
    pub started_ms: u64,
    /// Simulated completion time in milliseconds.
    pub completed_ms: u64,
}

impl LookupRecord {
    /// Simulated wall time the lookup took, in milliseconds.
    pub fn latency_ms(&self) -> u64 {
        self.completed_ms.saturating_sub(self.started_ms)
    }

    /// The simulated minute the lookup completed in — the key used by
    /// [`crate::MinuteSeries`].
    pub fn completed_minute(&self) -> u64 {
        self.completed_ms / 60_000
    }
}

/// Receiver for trace events. The simulator holds the sink as a trait
/// object and calls it from the event loop; implementations should be
/// O(1) per event (aggregate, don't analyse).
pub trait TelemetrySink {
    /// Called once when a lookup terminates (converges, exhausts its
    /// candidates, or finds its value).
    fn on_lookup(&mut self, record: &LookupRecord);
}

/// Sharing a sink between the simulator (which owns it as a boxed trait
/// object) and the harness that reads the aggregates afterwards: any sink
/// works behind `Rc<RefCell<_>>`, so harnesses keep one handle and hand
/// the simulator a clone.
///
/// ```
/// use kad_telemetry::{TelemetrySink, VecSink};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let shared = Rc::new(RefCell::new(VecSink::default()));
/// let for_simulator: Box<dyn TelemetrySink> = Box::new(Rc::clone(&shared));
/// drop(for_simulator);
/// assert!(shared.borrow().records.is_empty());
/// ```
impl<S: TelemetrySink> TelemetrySink for std::rc::Rc<std::cell::RefCell<S>> {
    fn on_lookup(&mut self, record: &LookupRecord) {
        self.borrow_mut().on_lookup(record);
    }
}

/// A sink that discards everything — the semantics of running with no sink
/// installed. Exists so benches can measure the dispatch cost itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn on_lookup(&mut self, _record: &LookupRecord) {}
}

/// A sink that stores every record, for tests and benches.
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// The records received, in completion order.
    pub records: Vec<LookupRecord>,
}

impl TelemetrySink for VecSink {
    fn on_lookup(&mut self, record: &LookupRecord) {
        self.records.push(*record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(purpose: TracePurpose, outcome: LookupOutcome) -> LookupRecord {
        LookupRecord {
            lookup_id: 7,
            target: [0xAB; TARGET_BYTES],
            purpose,
            outcome,
            hops: 3,
            messages: 9,
            responded: 8,
            started_ms: 61_000,
            completed_ms: 62_500,
        }
    }

    #[test]
    fn latency_and_minute() {
        let r = record(TracePurpose::Locate, LookupOutcome::Converged);
        assert_eq!(r.latency_ms(), 1_500);
        assert_eq!(r.completed_minute(), 1);
    }

    #[test]
    fn success_classification() {
        assert!(LookupOutcome::Converged.is_success());
        assert!(LookupOutcome::ValueFound.is_success());
        assert!(!LookupOutcome::Partial.is_success());
        assert!(!LookupOutcome::Failed.is_success());
        assert!(!LookupOutcome::ValueMissing.is_success());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TracePurpose::Retrieve.label(), "retrieve");
        assert_eq!(LookupOutcome::ValueMissing.label(), "value-missing");
    }

    #[test]
    fn shared_rc_refcell_sink_delegates() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let shared = Rc::new(RefCell::new(VecSink::default()));
        let mut handle: Box<dyn TelemetrySink> = Box::new(Rc::clone(&shared));
        handle.on_lookup(&record(TracePurpose::Locate, LookupOutcome::Converged));
        drop(handle);
        assert_eq!(shared.borrow().records.len(), 1);
    }

    #[test]
    fn sinks_receive_records() {
        let mut noop = NoopSink;
        noop.on_lookup(&record(TracePurpose::Refresh, LookupOutcome::Partial));
        let mut vec_sink = VecSink::default();
        vec_sink.on_lookup(&record(TracePurpose::Locate, LookupOutcome::Failed));
        vec_sink.on_lookup(&record(TracePurpose::Retrieve, LookupOutcome::ValueFound));
        assert_eq!(vec_sink.records.len(), 2);
        assert_eq!(vec_sink.records[1].outcome, LookupOutcome::ValueFound);
    }
}
