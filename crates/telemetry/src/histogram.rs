//! A log-bucketed streaming histogram with exact small-value counts.
//!
//! Hop counts, message counts and simulated latencies are all small
//! non-negative integers with occasional heavy tails. [`LogHistogram`]
//! records them in O(1) with no allocation after construction:
//!
//! * values `0..64` are counted **exactly** (one bucket per value) — hop
//!   counts and per-lookup message counts live entirely in this region, so
//!   their percentiles are exact;
//! * values `>= 64` fall into logarithmic buckets with 16 sub-buckets per
//!   power of two (relative error ≤ 1/16 ≈ 6.25%), the HDR-histogram
//!   scheme reduced to its integer core.
//!
//! Histograms [`merge`](LogHistogram::merge) losslessly: recording a stream
//! into one histogram equals recording its parts into several and merging
//! them (bucket counts are additive), which is what lets parallel scenario
//! runners aggregate per-worker instruments. This equality and percentile
//! monotonicity are property-tested in `tests/proptests.rs`.
//!
//! # Example
//!
//! ```
//! use kad_telemetry::LogHistogram;
//!
//! let mut h = LogHistogram::new();
//! for v in [1u64, 2, 2, 3, 3, 3, 40] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 7);
//! assert_eq!(h.percentile(0.5), 3); // exact: 3 is the median
//! assert_eq!(h.max(), 40);
//! ```

/// Number of exactly-counted small values (one bucket per value).
const LINEAR_MAX: u64 = 64;
/// Sub-buckets per power of two in the logarithmic region.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS; // 16
/// First exponent handled by the log region (2^6 == LINEAR_MAX).
const FIRST_EXP: u32 = 6;
/// Total bucket count: 64 exact + (63 - 6 + 1) * 16 log buckets.
const BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_EXP as usize) * SUBS;

/// Streaming log-bucketed histogram over `u64` samples (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Bucket index for a value.
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // v in [2^e, 2^(e+1)), e >= 6
        let sub = ((v >> (e - SUB_BITS)) as usize) & (SUBS - 1);
        LINEAR_MAX as usize + (e - FIRST_EXP) as usize * SUBS + sub
    }
}

/// Lower bound (representative value) of a bucket. Inverse of
/// [`bucket_of`] up to the sub-bucket resolution.
fn bucket_lower_bound(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        index as u64
    } else {
        let log_index = index - LINEAR_MAX as usize;
        let e = FIRST_EXP + (log_index / SUBS) as u32;
        let sub = (log_index % SUBS) as u64;
        (SUBS as u64 + sub) << (e - SUB_BITS)
    }
}

impl LogHistogram {
    /// Creates an empty histogram (allocates its fixed bucket array once).
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded samples (0 when empty). The sum is
    /// tracked exactly, so the mean does not suffer bucket quantization.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q ∈ [0, 1]`: the smallest bucket
    /// representative such that at least `⌈q · count⌉` samples are ≤ its
    /// bucket. Exact for values below 64; within one sub-bucket (≤ 6.25%
    /// relative error) above. Returns 0 on an empty histogram.
    ///
    /// Monotone in `q` (property-tested).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(index);
            }
        }
        self.max
    }

    /// Merges another histogram into this one. Lossless: per-bucket counts
    /// add, so `merge` commutes with recording (see module docs).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates over the non-empty buckets as `(representative, count)`,
    /// ascending in value. Representatives below 64 are the exact recorded
    /// value; above, the bucket's lower bound.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        for v in 0..64u64 {
            // Quantile (v+1)/64 lands exactly on value v.
            assert_eq!(h.percentile((v + 1) as f64 / 64.0), v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.mean(), 31.5);
    }

    #[test]
    fn log_region_bounds_error() {
        let mut h = LogHistogram::new();
        for v in [100u64, 1000, 10_000, 1_000_000, u64::MAX] {
            h.record(v);
            let p = h.percentile(1.0);
            assert!(p <= v, "representative {p} exceeds sample {v}");
            assert!(
                (v - p) as f64 <= v as f64 / 16.0 + 1.0,
                "bucket error too large: {v} -> {p}"
            );
            let mut fresh = LogHistogram::new();
            fresh.record(v);
            assert_eq!(fresh.iter().count(), 1);
        }
    }

    #[test]
    fn bucket_roundtrip_lower_bound() {
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 3]) {
            let b = bucket_of(v);
            let lo = bucket_lower_bound(b);
            assert!(lo <= v, "lower bound {lo} above value {v}");
            assert_eq!(bucket_of(lo), b, "lower bound stays in its bucket");
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, v) in [1u64, 5, 5, 900, 64, 63, 1 << 40].iter().enumerate() {
            all.record(*v);
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(7, 5);
        a.record_n(9, 0);
        for _ in 0..5 {
            b.record(7);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: every quantile is 0, out-of-range included.
        let empty = LogHistogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.percentile(q), 0);
        }
        // Single sample in the exact region: every quantile is the sample.
        let mut one = LogHistogram::new();
        one.record(42);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(one.percentile(q), 42);
        }
        // Single sample in the log region: every quantile is the bucket
        // representative, at or below the sample within one sub-bucket.
        let mut big = LogHistogram::new();
        big.record(1000);
        let p = big.percentile(1.0);
        assert_eq!(big.percentile(0.0), p);
        assert!(p <= 1000 && (1000 - p) as f64 <= 1000.0 / 16.0 + 1.0);
        // p=0 is the minimum, p=100 the maximum (exact region), and
        // out-of-range quantiles clamp to them.
        let mut h = LogHistogram::new();
        for v in [5u64, 7, 11, 13] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 5);
        assert_eq!(h.percentile(1.0), 13);
        assert_eq!(h.percentile(-3.0), 5);
        assert_eq!(h.percentile(7.0), 13);
    }

    #[test]
    fn percentile_is_monotone_on_a_sample() {
        let mut h = LogHistogram::new();
        for v in [3u64, 1, 4, 1, 5, 9, 2, 6, 535, 89, 79] {
            h.record(v);
        }
        let mut prev = 0;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            assert!(p >= prev, "percentile not monotone at q={i}%");
            prev = p;
        }
        assert_eq!(h.percentile(0.0), h.min());
        assert_eq!(h.percentile(1.0), h.percentile(0.999));
    }
}
