//! Property tests for the telemetry instruments.
//!
//! The two contracts the experiment harness leans on:
//!
//! * **merge is lossless** — recording a stream into one instrument equals
//!   splitting the stream across several instruments and merging them
//!   (this is what makes per-worker aggregation in parallel runners exact);
//! * **percentiles are monotone** in the quantile, and exact in the
//!   small-value region where hop and message counts live.

use kad_telemetry::journal::{Journal, JournalEvent};
use kad_telemetry::trace::{LookupOutcome, LookupRecord, TracePurpose, TARGET_BYTES};
use kad_telemetry::{
    CounterFamily, ExemplarReservoir, HistogramFamily, LogHistogram, MinuteSeries, SpanProfile,
    TraceTree,
};
use proptest::prelude::*;

/// Decodes a generated `(selector, a, b)` triple into a journal event —
/// the event stream generator shared by the journal properties.
fn decode_event((selector, a, b): (u8, u64, u32)) -> JournalEvent {
    match selector % 4 {
        0 => JournalEvent::Join { minute: a, node: b },
        1 => JournalEvent::Churn { minute: a, node: b },
        2 => JournalEvent::Compromise { minute: a, node: b },
        _ => JournalEvent::Action {
            minute: a,
            at_ms: a * 60_000 + u64::from(b % 60_000),
            kind: "lookup",
        },
    }
}

/// Decodes a generated `(lookup_id, started, latency)` triple into a
/// minimal trace tree — distinct ids so tree identities are unique, as
/// the simulator guarantees within a run.
fn decode_tree((lookup_id, started_ms, latency): (u64, u64, u64)) -> TraceTree {
    TraceTree {
        record: LookupRecord {
            lookup_id,
            target: [0x33; TARGET_BYTES],
            purpose: TracePurpose::Retrieve,
            outcome: LookupOutcome::ValueFound,
            hops: 1,
            messages: 1,
            responded: 1,
            started_ms,
            completed_ms: started_ms + latency,
        },
        queue_wait_ms: 0,
        spans: Vec::new(),
        final_rpc: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram merge() equals single-stream recording, for arbitrary
    /// samples and an arbitrary split point.
    #[test]
    fn histogram_merge_equals_single_stream(
        samples in proptest::collection::vec(any::<u64>(), 0..256),
        split in any::<u64>(),
    ) {
        let cut = (split % (samples.len() as u64 + 1)) as usize;
        let mut all = LogHistogram::new();
        for &v in &samples {
            all.record(v);
        }
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for &v in &samples[..cut] {
            left.record(v);
        }
        for &v in &samples[cut..] {
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(&left, &all);
        // Merging in the opposite order is identical too (commutative).
        let mut left2 = LogHistogram::new();
        for &v in &samples[cut..] {
            left2.record(v);
        }
        let mut right2 = LogHistogram::new();
        for &v in &samples[..cut] {
            right2.record(v);
        }
        left2.merge(&right2);
        prop_assert_eq!(&left2, &all);
    }

    /// Percentiles never decrease as the quantile grows, and stay inside
    /// the recorded range (up to bucket resolution below the max).
    #[test]
    fn histogram_percentiles_monotone(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut prev = 0u64;
        for step in 0..=50 {
            let q = step as f64 / 50.0;
            let p = h.percentile(q);
            prop_assert!(p >= prev, "percentile decreased at q={}: {} < {}", q, p, prev);
            prop_assert!(p <= h.max(), "percentile {} above max {}", p, h.max());
            prev = p;
        }
    }

    /// In the exact region (values < 64) the percentile is the true
    /// order statistic.
    #[test]
    fn small_value_percentiles_are_exact(
        samples in proptest::collection::vec(0u64..64, 1..150),
        q_scaled in 0u64..=100,
    ) {
        let mut h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let q = q_scaled as f64 / 100.0;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        prop_assert_eq!(h.percentile(q), sorted[rank - 1]);
    }

    /// Histogram count/sum bookkeeping survives arbitrary splits.
    #[test]
    fn histogram_mean_is_exact(
        samples in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut h = LogHistogram::new();
        let mut sum = 0u64;
        for &v in &samples {
            h.record(v);
            sum += v;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let expected = sum as f64 / samples.len() as f64;
        prop_assert!((h.mean() - expected).abs() < 1e-9);
    }

    /// MinuteSeries merge() equals single-stream recording. Values are
    /// small integers so f64 summation is exact in any order.
    #[test]
    fn minute_series_merge_equals_single_stream(
        samples in proptest::collection::vec((0u64..50, 0u64..1000), 0..150),
        split in any::<u64>(),
    ) {
        let cut = (split % (samples.len() as u64 + 1)) as usize;
        let mut all = MinuteSeries::new();
        for &(m, v) in &samples {
            all.record(m, v as f64);
        }
        let mut left = MinuteSeries::new();
        let mut right = MinuteSeries::new();
        for &(m, v) in &samples[..cut] {
            left.record(m, v as f64);
        }
        for &(m, v) in &samples[cut..] {
            right.record(m, v as f64);
        }
        left.merge(&right);
        prop_assert_eq!(&left, &all);
    }

    /// Label-set lookup in a counter family is stable: after any recording
    /// sequence, `get(l)` equals the sum of the increments recorded under
    /// exactly `l`, and the total equals the sum over all increments.
    #[test]
    fn counter_family_lookup_is_stable(
        increments in proptest::collection::vec((0u8..6, 0u8..6, 1u64..50), 0..200),
    ) {
        let mut family: CounterFamily<(u8, u8)> = CounterFamily::new();
        for &(a, b, n) in &increments {
            family.add((a, b), n);
        }
        for a in 0u8..6 {
            for b in 0u8..6 {
                let expected: u64 = increments
                    .iter()
                    .filter(|&&(x, y, _)| (x, y) == (a, b))
                    .map(|&(_, _, n)| n)
                    .sum();
                prop_assert_eq!(family.get(&(a, b)), expected);
            }
        }
        let total: u64 = increments.iter().map(|&(_, _, n)| n).sum();
        prop_assert_eq!(family.total(), total);
    }

    /// Counter-family merge() of sharded recording equals single-stream
    /// recording, for an arbitrary split point.
    #[test]
    fn counter_family_merge_equals_single_stream(
        increments in proptest::collection::vec((0u8..8, 1u64..100), 0..150),
        split in any::<u64>(),
    ) {
        let cut = (split % (increments.len() as u64 + 1)) as usize;
        let mut all: CounterFamily<u8> = CounterFamily::new();
        for &(l, n) in &increments {
            all.add(l, n);
        }
        let mut left: CounterFamily<u8> = CounterFamily::new();
        let mut right: CounterFamily<u8> = CounterFamily::new();
        for &(l, n) in &increments[..cut] {
            left.add(l, n);
        }
        for &(l, n) in &increments[cut..] {
            right.add(l, n);
        }
        left.merge(&right);
        prop_assert_eq!(&left, &all);
        // Commutative: merging in the opposite order is identical.
        let mut flipped: CounterFamily<u8> = CounterFamily::new();
        for &(l, n) in &increments[cut..] {
            flipped.add(l, n);
        }
        for &(l, n) in &increments[..cut] {
            flipped.add(l, n);
        }
        prop_assert_eq!(&flipped, &all);
    }

    /// Histogram-family merge() of sharded recording equals single-stream
    /// recording, per label and on the merged rollup.
    #[test]
    fn histogram_family_merge_equals_single_stream(
        samples in proptest::collection::vec((0u8..6, any::<u64>()), 0..200),
        split in any::<u64>(),
    ) {
        let cut = (split % (samples.len() as u64 + 1)) as usize;
        let mut all: HistogramFamily<u8> = HistogramFamily::new();
        for &(l, v) in &samples {
            all.record(l, v);
        }
        let mut left: HistogramFamily<u8> = HistogramFamily::new();
        let mut right: HistogramFamily<u8> = HistogramFamily::new();
        for &(l, v) in &samples[..cut] {
            left.record(l, v);
        }
        for &(l, v) in &samples[cut..] {
            right.record(l, v);
        }
        left.merge(&right);
        prop_assert_eq!(&left, &all);
        // The rollup is lossless too: one histogram over the whole stream.
        let mut flat = LogHistogram::new();
        for &(_, v) in &samples {
            flat.record(v);
        }
        prop_assert_eq!(left.merged(), flat);
    }

    /// SpanProfile merge() of sharded recording equals single-stream
    /// recording, for arbitrary paths and an arbitrary split point —
    /// the same contract as the metric families, so parallel grid
    /// workers can aggregate per-cell profiles exactly.
    #[test]
    fn span_profile_merge_equals_single_stream(
        spans in proptest::collection::vec(
            (0u8..5, 0u8..4, 1u64..1_000_000, 0u64..1_000_000), 0..200),
        split in any::<u64>(),
    ) {
        const ROOTS: [&str; 5] = ["cell", "session", "actions", "drain", "probe"];
        const LEAVES: [&str; 4] = ["", "/solve", "/layering", "/repair"];
        let rows: Vec<(String, u64, u64)> = spans
            .iter()
            .map(|&(root, leaf, total, self_raw)| {
                let path = format!("{}{}", ROOTS[root as usize], LEAVES[leaf as usize]);
                // self-time never exceeds total time.
                (path, total, self_raw % (total + 1))
            })
            .collect();
        let cut = (split % (rows.len() as u64 + 1)) as usize;
        let mut all = SpanProfile::new();
        for (path, total, self_ns) in &rows {
            all.record(path, *total, *self_ns);
        }
        let mut left = SpanProfile::new();
        let mut right = SpanProfile::new();
        for (path, total, self_ns) in &rows[..cut] {
            left.record(path, *total, *self_ns);
        }
        for (path, total, self_ns) in &rows[cut..] {
            right.record(path, *total, *self_ns);
        }
        left.merge(&right);
        prop_assert_eq!(&left, &all);
        // Commutative: merging in the opposite order is identical.
        let mut flipped = SpanProfile::new();
        for (path, total, self_ns) in &rows[cut..] {
            flipped.record(path, *total, *self_ns);
        }
        let mut other = SpanProfile::new();
        for (path, total, self_ns) in &rows[..cut] {
            other.record(path, *total, *self_ns);
        }
        flipped.merge(&other);
        prop_assert_eq!(&flipped, &all);
    }

    /// The journal's hash chain is capacity-independent: a ring that
    /// truncates aggressively fingerprints the same event stream
    /// identically to an unbounded one, with every truncation accounted.
    #[test]
    fn journal_chain_is_capacity_independent(
        events in proptest::collection::vec((0u8..=255, 0u64..100, 0u32..64), 0..150),
        capacity in 1usize..8,
    ) {
        let mut big = Journal::new();
        let mut small = Journal::with_capacity(capacity);
        for raw in &events {
            let event = decode_event(*raw);
            big.record(event.clone());
            small.record(event);
        }
        prop_assert_eq!(small.chain(), big.chain());
        prop_assert_eq!(small.recorded_events(), events.len() as u64);
        prop_assert_eq!(
            small.dropped_events(),
            events.len().saturating_sub(capacity) as u64,
            "every truncated event is accounted"
        );
        prop_assert_eq!(small.counts(), big.counts());
    }

    /// Prefix property: two runs recording the same event prefix carry
    /// identical seals up to the divergence point and different chains
    /// from the first divergent event on — what `repro audit` relies on
    /// to name the first divergent minute.
    #[test]
    fn journal_seals_localize_the_first_divergence(
        prefix in proptest::collection::vec((0u8..=255, 0u64..100, 0u32..64), 0..60),
        divergence in (0u8..=255, 0u64..100, 0u32..64),
    ) {
        let mut a = Journal::new();
        let mut b = Journal::new();
        for (minute, raw) in prefix.iter().enumerate() {
            let event = decode_event(*raw);
            a.record(event.clone());
            b.record(event);
            a.seal_minute(minute as u64);
            b.seal_minute(minute as u64);
        }
        prop_assert_eq!(a.seals(), b.seals());
        let mutated = {
            // Guarantee the tail differs: bump the node field.
            let (s, m, n) = divergence;
            decode_event((s, m, n ^ 1))
        };
        a.record(decode_event(divergence));
        b.record(mutated);
        a.seal_minute(prefix.len() as u64);
        b.seal_minute(prefix.len() as u64);
        let (last_a, last_b) = (
            a.seals()[prefix.len()],
            b.seals()[prefix.len()],
        );
        prop_assert_eq!(last_a.minute, last_b.minute);
        prop_assert_eq!(last_a.events, last_b.events);
        prop_assert!(last_a.chain != last_b.chain, "divergent event, divergent seal");
    }

    /// The exemplar reservoir is a deterministic top-K: whatever order
    /// the trees arrive in, the kept exemplars are exactly the
    /// worst-latency `capacity` trees under the total rank order
    /// (latency desc, lookup id asc, start asc) — so same-seed runs pick
    /// byte-identical exemplars no matter how event interleaving shuffles
    /// completion order.
    #[test]
    fn exemplar_reservoir_is_an_order_independent_top_k(
        raw in proptest::collection::vec((0u64..1_000_000, 0u64..10_000), 0..80),
        capacity in 0usize..12,
        rotate in any::<u64>(),
    ) {
        // Index-derived lookup ids: unique identities, as in a real run.
        let trees: Vec<TraceTree> = raw
            .iter()
            .enumerate()
            .map(|(i, &(started, latency))| decode_tree((i as u64, started, latency)))
            .collect();
        let mut expected = trees.clone();
        expected.sort_by_key(|t| {
            (
                std::cmp::Reverse(t.end_to_end_ms()),
                t.record.lookup_id,
                t.record.started_ms,
            )
        });
        expected.truncate(capacity);
        let mut forward = ExemplarReservoir::new(capacity);
        for t in &trees {
            forward.offer(t);
        }
        prop_assert_eq!(forward.exemplars(), &expected[..]);
        // Any rotation of the offer order picks the same exemplars.
        let cut = if trees.is_empty() {
            0
        } else {
            (rotate % trees.len() as u64) as usize
        };
        let mut rotated = ExemplarReservoir::new(capacity);
        for t in trees[cut..].iter().chain(&trees[..cut]) {
            rotated.offer(t);
        }
        prop_assert_eq!(&rotated, &forward);
        let mut reversed = ExemplarReservoir::new(capacity);
        for t in trees.iter().rev() {
            reversed.offer(t);
        }
        prop_assert_eq!(&reversed, &forward);
    }

    /// Reservoir merge() across matrix workers is lossless and
    /// order-independent: merging per-shard reservoirs equals offering
    /// the whole stream to one reservoir, whichever shard merges first,
    /// and re-merging a shard changes nothing (dedup by tree identity).
    #[test]
    fn exemplar_reservoir_merge_equals_single_stream(
        raw in proptest::collection::vec((0u64..1_000_000, 0u64..10_000), 0..80),
        capacity in 1usize..8,
        split in any::<u64>(),
    ) {
        let trees: Vec<TraceTree> = raw
            .iter()
            .enumerate()
            .map(|(i, &(started, latency))| decode_tree((i as u64, started, latency)))
            .collect();
        let cut = (split % (trees.len() as u64 + 1)) as usize;
        let mut all = ExemplarReservoir::new(capacity);
        for t in &trees {
            all.offer(t);
        }
        let mut left = ExemplarReservoir::new(capacity);
        let mut right = ExemplarReservoir::new(capacity);
        for t in &trees[..cut] {
            left.offer(t);
        }
        for t in &trees[cut..] {
            right.offer(t);
        }
        let mut ab = left.clone();
        ab.merge(&right);
        prop_assert_eq!(&ab, &all, "sharded merge equals the single stream");
        let mut ba = right.clone();
        ba.merge(&left);
        prop_assert_eq!(&ba, &all, "merge commutes");
        let mut twice = ab.clone();
        twice.merge(&right);
        twice.merge(&left);
        prop_assert_eq!(&twice, &all, "re-merging shards is idempotent");
    }

    /// Range aggregation equals the sum of the per-window aggregates.
    #[test]
    fn minute_series_range_consistency(
        samples in proptest::collection::vec((0u64..30, 0u64..1000), 1..120),
        bounds in (0u64..30, 0u64..=30),
    ) {
        let (from, to) = (bounds.0.min(bounds.1), bounds.0.max(bounds.1));
        let mut s = MinuteSeries::new();
        for &(m, v) in &samples {
            s.record(m, v as f64);
        }
        let agg = s.range_stats(from, to);
        let expected: u64 = samples
            .iter()
            .filter(|&&(m, _)| m >= from && m < to)
            .count() as u64;
        prop_assert_eq!(agg.count, expected);
        let expected_sum: u64 = samples
            .iter()
            .filter(|&&(m, _)| m >= from && m < to)
            .map(|&(_, v)| v)
            .sum();
        prop_assert!((agg.sum - expected_sum as f64).abs() < 1e-9);
    }
}
