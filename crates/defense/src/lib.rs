//! Defense policies for the Kademlia overlay: the counterpart of the
//! attack-campaign engine.
//!
//! The paper measures how fast an adversary destroys connection
//! resilience `κ(t)`; this crate supplies the other side of that ledger —
//! concrete implementations of the protocol-level
//! [`DefensePolicy`] seam (defined in [`kademlia::defense`], installed
//! via [`kademlia::network::SimNetwork::set_defense_policy`]):
//!
//! * [`NoDefense`] — the baseline: every hook is a no-op, so any gap
//!   between it and a real policy is attributable to the policy.
//! * [`EvictUnresponsive`] — liveness-checked bucket maintenance: each
//!   node periodically PINGs its least-recently-seen contacts, so
//!   silently-departed neighbors are evicted at the probe cadence
//!   instead of lingering until the next natural traffic timeout.
//! * [`DiversifyBuckets`] — an S/Kademlia-style prefix-diversity cap
//!   (Salah/Roos/Strufe motivate diversity-aware table maintenance):
//!   when a bucket is full, a candidate from an underrepresented prefix
//!   group may replace the least-recently-seen member of the most
//!   overrepresented group, and candidates whose own group already
//!   saturates its quota are rejected. Eclipse clusters share long
//!   prefixes, so the cap bounds how much of any bucket they can occupy.
//! * [`SelfHeal`] — Ferretti-style local repair (*Resilience of Dynamic
//!   Overlays through Local Interactions*): every eviction launches a
//!   lookup toward the lost contact's id, pulling replacement contacts
//!   from surviving neighbors' closest sets.
//!
//! [`PolicyKind`] names the four for experiment grids and CSV cells.
//!
//! A second, orthogonal countermeasure — disjoint-path retrievals against
//! value-withholding compromised nodes — lives in the protocol crate
//! ([`kademlia::network::SimNetwork::start_find_value_disjoint`]); the
//! defense experiments drive both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kademlia::defense::{DefensePolicy, InsertDecision};

use dessim::time::{SimDuration, SimTime};
use kademlia::bucket::KBucket;
use kademlia::contact::Contact;
use kademlia::id::NodeId;
use kademlia::routing::RoutingTable;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four policies the defense experiments cross with the attack
/// strategies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No defense at all (baseline).
    #[default]
    None,
    /// Liveness-checked bucket eviction ([`EvictUnresponsive`]).
    EvictUnresponsive,
    /// Prefix-diversity caps per bucket ([`DiversifyBuckets`]).
    DiversifyBuckets,
    /// Local repair on neighbor loss ([`SelfHeal`]).
    SelfHeal,
}

impl PolicyKind {
    /// All policies, in presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::None,
        PolicyKind::EvictUnresponsive,
        PolicyKind::DiversifyBuckets,
        PolicyKind::SelfHeal,
    ];

    /// Short label for series names and CSV cells.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::None => "none",
            PolicyKind::EvictUnresponsive => "evict-unresponsive",
            PolicyKind::DiversifyBuckets => "diversify",
            PolicyKind::SelfHeal => "self-heal",
        }
    }

    /// Builds the policy with its default parameters, ready for
    /// [`kademlia::network::SimNetwork::set_defense_policy`].
    pub fn build(&self) -> Box<dyn DefensePolicy> {
        match self {
            PolicyKind::None => Box::new(NoDefense),
            PolicyKind::EvictUnresponsive => Box::new(EvictUnresponsive::default()),
            PolicyKind::DiversifyBuckets => Box::new(DiversifyBuckets::default()),
            PolicyKind::SelfHeal => Box::new(SelfHeal),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The baseline policy: admits everything, probes nothing, repairs
/// nothing. Installing it (rather than no policy) exercises the hook
/// dispatch itself, which is what the `perf_defense` bench pins.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDefense;

impl DefensePolicy for NoDefense {
    fn label(&self) -> &'static str {
        "none"
    }
}

/// Liveness-checked bucket eviction.
///
/// Every [`EvictUnresponsive::probe_interval`] each node PINGs up to
/// [`EvictUnresponsive::probes_per_tick`] contacts it has not heard from
/// for at least [`EvictUnresponsive::max_age`], oldest first. A departed
/// contact fails the PING, feeds the staleness limit `s`, and is evicted
/// `s` probes later — bounded staleness instead of "whenever traffic
/// happens to touch it".
#[derive(Clone, Copy, Debug)]
pub struct EvictUnresponsive {
    /// Cadence of the per-node probe tick.
    pub probe_interval: SimDuration,
    /// Minimum silence before a contact is considered probe-worthy.
    pub max_age: SimDuration,
    /// Upper bound on probes per node per tick (bounds the overhead).
    pub probes_per_tick: usize,
}

impl Default for EvictUnresponsive {
    fn default() -> Self {
        EvictUnresponsive {
            probe_interval: SimDuration::from_minutes(2),
            max_age: SimDuration::from_minutes(4),
            probes_per_tick: 8,
        }
    }
}

impl DefensePolicy for EvictUnresponsive {
    fn label(&self) -> &'static str {
        "evict-unresponsive"
    }

    fn probe_interval(&self) -> Option<SimDuration> {
        Some(self.probe_interval)
    }

    fn probe_targets(&mut self, table: &RoutingTable, now: SimTime) -> Vec<Contact> {
        let mut stale: Vec<(SimTime, Contact)> = Vec::new();
        for i in 0..table.bucket_count() {
            for entry in table.bucket(i).iter() {
                if now.since(entry.last_seen) >= self.max_age {
                    stale.push((entry.last_seen, entry.contact));
                }
            }
        }
        stale.sort_by_key(|&(seen, c)| (seen, c.addr.0));
        stale.truncate(self.probes_per_tick);
        stale.into_iter().map(|(_, c)| c).collect()
    }
}

/// S/Kademlia-style prefix-diversity caps per bucket.
///
/// Contacts in bucket `i` all share the owner-relative distance prefix
/// down to bit `i`; the [`DiversifyBuckets::group_bits`] bits *below*
/// that leading bit partition the bucket into `2^group_bits` prefix
/// groups (the id-space analog of subnet diversity — an eclipse cluster
/// planted near one key lands in one group). The policy only acts on
/// **full** buckets, so it can never leave a bucket under-populated:
///
/// * a candidate whose group already holds ≥ `cap` members is rejected
///   (`cap` defaults to `k / 2^group_bits`, i.e. a fair share);
/// * otherwise, if some other group exceeds the candidate's group size,
///   the least-recently-seen member of the largest group is replaced —
///   diversity pressure where plain Kademlia would drop the newcomer.
#[derive(Clone, Copy, Debug)]
pub struct DiversifyBuckets {
    /// Refinement bits below the bucket's leading distance bit.
    pub group_bits: u16,
    /// Per-group quota; `None` derives `k / 2^group_bits` (min 1) from
    /// the bucket's size at decision time.
    pub cap: Option<usize>,
}

impl Default for DiversifyBuckets {
    fn default() -> Self {
        DiversifyBuckets {
            group_bits: 2,
            cap: None,
        }
    }
}

impl DiversifyBuckets {
    /// The prefix group of `id` within bucket `bucket_index` of the
    /// table owned by `own_id`: the `group_bits` distance bits just
    /// below the bucket's leading bit. `group_bits` is clamped to 8
    /// everywhere (256 groups is already far beyond any useful cap), so
    /// the group index always fits the count arrays.
    pub fn group_of(&self, own_id: &NodeId, id: &NodeId, bucket_index: usize) -> u64 {
        let d = own_id.distance(id);
        let mut group = 0u64;
        for j in 1..=self.group_bits.min(8) as usize {
            let bit = bucket_index
                .checked_sub(j)
                .map(|pos| d.bit(pos))
                .unwrap_or(false);
            group = (group << 1) | bit as u64;
        }
        group
    }

    fn effective_cap(&self, bucket_len: usize) -> usize {
        self.cap
            .unwrap_or_else(|| bucket_len >> self.group_bits.min(8))
            .max(1)
    }
}

impl DefensePolicy for DiversifyBuckets {
    fn label(&self) -> &'static str {
        "diversify"
    }

    fn decide_insert(
        &mut self,
        own_id: &NodeId,
        bucket: &KBucket,
        bucket_index: usize,
        candidate: &Contact,
    ) -> InsertDecision {
        if !bucket.is_full() {
            // Under-populated buckets take everything: the cap must never
            // cost connectivity while fewer than k live contacts exist.
            return InsertDecision::Admit;
        }
        let groups = 1usize << self.group_bits.min(8);
        let mut counts = vec![0usize; groups];
        for entry in bucket.iter() {
            counts[self.group_of(own_id, &entry.contact.id, bucket_index) as usize] += 1;
        }
        let own_group = self.group_of(own_id, &candidate.id, bucket_index) as usize;
        let cap = self.effective_cap(bucket.len());
        if counts[own_group] >= cap {
            return InsertDecision::Reject;
        }
        // Admit by replacing the LRS member of the largest group, if that
        // group is strictly bigger than the candidate's would become.
        let (largest, largest_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(group, &count)| (count, groups - group))
            .map(|(group, &count)| (group, count))
            .unwrap_or((own_group, 0));
        if largest_count > counts[own_group] + 1 || largest_count > cap {
            let victim = bucket
                .iter()
                .find(|e| self.group_of(own_id, &e.contact.id, bucket_index) as usize == largest)
                .map(|e| e.contact.id);
            if let Some(victim) = victim {
                return InsertDecision::Replace(victim);
            }
        }
        InsertDecision::Reject
    }
}

/// Ferretti-style local self-healing: every evicted neighbor triggers a
/// repair lookup toward the lost contact's id, so surviving neighbors'
/// closest sets refill the hole while the region is still fresh.
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfHeal;

impl DefensePolicy for SelfHeal {
    fn label(&self) -> &'static str {
        "self-heal"
    }

    fn repair_target(&mut self, _own_id: &NodeId, lost: &Contact) -> Option<NodeId> {
        Some(lost.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dessim::time::SimTime;
    use kademlia::config::KademliaConfig;
    use kademlia::contact::NodeAddr;

    fn contact(v: u64) -> Contact {
        Contact::new(NodeId::from_u64(v, 16), NodeAddr(v as u32))
    }

    #[test]
    fn kinds_round_trip_to_policies() {
        assert_eq!(PolicyKind::ALL.len(), 4);
        for kind in PolicyKind::ALL {
            let policy = kind.build();
            assert_eq!(policy.label(), kind.label());
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(PolicyKind::None.build().probe_interval(), None);
        assert!(PolicyKind::EvictUnresponsive
            .build()
            .probe_interval()
            .is_some());
    }

    #[test]
    fn evict_unresponsive_probes_oldest_stale_contacts_first() {
        let config = KademliaConfig::builder().bits(16).k(4).build().unwrap();
        let mut table = RoutingTable::new(NodeId::from_u64(0, 16), &config);
        // Seen at t = 0, 60 s, 10 min.
        table.offer(contact(2), SimTime::ZERO);
        table.offer(contact(3), SimTime::from_secs(60));
        table.offer(contact(5), SimTime::from_minutes(10));
        let mut policy = EvictUnresponsive {
            probe_interval: SimDuration::from_minutes(2),
            max_age: SimDuration::from_minutes(4),
            probes_per_tick: 2,
        };
        let targets = policy.probe_targets(&table, SimTime::from_minutes(11));
        // 2 and 3 are stale (≥ 4 min silent), 5 is fresh; oldest first,
        // capped at probes_per_tick.
        assert_eq!(targets, vec![contact(2), contact(3)]);
        let none = policy.probe_targets(&table, SimTime::from_minutes(2));
        assert!(none.is_empty(), "nothing stale yet");
    }

    #[test]
    fn diversify_admits_everything_below_capacity() {
        let mut policy = DiversifyBuckets::default();
        let own = NodeId::from_u64(0, 16);
        let mut bucket = KBucket::new(4);
        for v in [0x10u64, 0x11, 0x12] {
            assert_eq!(
                policy.decide_insert(&own, &bucket, 4, &contact(v)),
                InsertDecision::Admit,
                "non-full buckets admit even same-group contacts"
            );
            bucket.offer(contact(v), SimTime::ZERO);
        }
    }

    #[test]
    fn diversify_rejects_saturated_groups_and_replaces_overrepresented() {
        let mut policy = DiversifyBuckets {
            group_bits: 2,
            cap: Some(1),
        };
        let own = NodeId::from_u64(0, 16);
        // Bucket 5 covers distances 32..64; groups are bits 4..3:
        // 32..40 → group 0, 40..48 → group 1, 48..56 → group 2, 56..64 → 3.
        let mut bucket = KBucket::new(3);
        for v in [32u64, 33, 40] {
            bucket.offer(contact(v), SimTime::ZERO);
        }
        // Full bucket: group 0 holds {32, 33}, group 1 holds {40}.
        // A group-0 candidate is rejected (cap 1 saturated).
        assert_eq!(
            policy.decide_insert(&own, &bucket, 5, &contact(34)),
            InsertDecision::Reject
        );
        // A group-2 candidate replaces the LRS member of group 0.
        assert_eq!(
            policy.decide_insert(&own, &bucket, 5, &contact(48)),
            InsertDecision::Replace(NodeId::from_u64(32, 16))
        );
    }

    #[test]
    fn diversify_group_matches_distance_refinement_bits() {
        let policy = DiversifyBuckets::default();
        let own = NodeId::from_u64(0, 16);
        // Distance == id here; bucket 5, refinement bits 4 and 3.
        assert_eq!(policy.group_of(&own, &NodeId::from_u64(32, 16), 5), 0b00);
        assert_eq!(policy.group_of(&own, &NodeId::from_u64(40, 16), 5), 0b01);
        assert_eq!(policy.group_of(&own, &NodeId::from_u64(48, 16), 5), 0b10);
        assert_eq!(policy.group_of(&own, &NodeId::from_u64(56, 16), 5), 0b11);
        // Bucket 0 has no refinement bits below it: everything is group 0.
        assert_eq!(policy.group_of(&own, &NodeId::from_u64(1, 16), 0), 0);
    }

    #[test]
    fn diversify_oversized_group_bits_are_clamped_not_panicking() {
        // group_bits beyond 8 must clamp consistently in group_of and
        // the count arrays — a full-bucket decision used to index out of
        // bounds.
        let mut policy = DiversifyBuckets {
            group_bits: 9,
            cap: None,
        };
        let own = NodeId::from_u64(0, 16);
        let mut bucket = KBucket::new(2);
        bucket.offer(contact(0x4000), SimTime::ZERO);
        bucket.offer(contact(0x4abc), SimTime::ZERO);
        let decision = policy.decide_insert(&own, &bucket, 14, &contact(0x5fff));
        assert_ne!(decision, InsertDecision::Admit, "bucket is full");
        assert!(policy.group_of(&own, &NodeId::from_u64(0x5fff, 16), 14) < 256);
    }

    #[test]
    fn self_heal_repairs_toward_the_lost_id() {
        let mut policy = SelfHeal;
        let own = NodeId::from_u64(0, 16);
        let lost = contact(77);
        assert_eq!(policy.repair_target(&own, &lost), Some(lost.id));
    }
}
