//! Property tests for the defense policies.
//!
//! The load-bearing invariant of [`DiversifyBuckets`]: the diversity cap
//! only acts on **full** buckets. A policy that rejected contacts while a
//! bucket held fewer than `k` live entries would trade connectivity for
//! diversity — exactly the wrong deal while the table is starved — so
//! every `Reject` (and every `Replace`) must be observed at capacity, and
//! a `Replace` must name a contact that is actually stored.

use dessim::time::SimTime;
use kad_defense::{DefensePolicy, DiversifyBuckets, InsertDecision};
use kademlia::bucket::KBucket;
use kademlia::contact::{Contact, NodeAddr};
use kademlia::id::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random offer sequences through a bucket guarded by the policy:
    /// rejects and replacements happen only at ≥ k stored contacts, so
    /// the bucket fills to capacity whenever enough distinct contacts
    /// are offered — the "never rejects below k live contacts" contract.
    #[test]
    fn diversify_never_rejects_below_k_live_contacts(
        k in 1usize..9,
        group_bits in 0u16..4,
        bucket_index in 0usize..16,
        offers in proptest::collection::vec(0u16..u16::MAX, 1..120),
    ) {
        let mut policy = DiversifyBuckets { group_bits, cap: None };
        let own = NodeId::from_u64(0, 16);
        let mut bucket = KBucket::new(k);
        let lo = 1u64 << bucket_index;
        let mut distinct = std::collections::HashSet::new();
        for (i, raw) in offers.iter().enumerate() {
            // Constrain candidates into the bucket's distance range
            // [2^i, 2^(i+1)) relative to own_id = 0.
            let id_value = lo + (*raw as u64) % lo.max(1);
            let candidate = Contact::new(
                NodeId::from_u64(id_value, 16),
                NodeAddr(i as u32),
            );
            if bucket.contains(&candidate.id) {
                continue;
            }
            distinct.insert(id_value);
            let len_before = bucket.len();
            match policy.decide_insert(&own, &bucket, bucket_index, &candidate) {
                InsertDecision::Admit => {
                    bucket.offer(candidate, SimTime::ZERO);
                }
                InsertDecision::Reject => {
                    prop_assert!(
                        len_before >= k,
                        "rejected with only {len_before}/{k} live contacts"
                    );
                }
                InsertDecision::Replace(old) => {
                    prop_assert!(
                        len_before >= k,
                        "replaced with only {len_before}/{k} live contacts"
                    );
                    prop_assert!(bucket.contains(&old), "replace names a stored contact");
                    prop_assert!(bucket.remove(&old));
                    bucket.offer(candidate, SimTime::ZERO);
                    prop_assert_eq!(bucket.len(), len_before, "replace keeps the bucket full");
                }
            }
            prop_assert!(bucket.len() <= k);
        }
        // Supply permitting, the policy filled the bucket to capacity.
        prop_assert_eq!(bucket.len(), k.min(distinct.len()));
    }

    /// The prefix group is well-defined: stable per id and bounded by
    /// `2^group_bits`.
    #[test]
    fn diversify_groups_are_stable_and_bounded(
        group_bits in 0u16..6,
        bucket_index in 0usize..16,
        id in 1u64..u16::MAX as u64,
    ) {
        let policy = DiversifyBuckets { group_bits, cap: None };
        let own = NodeId::from_u64(0, 16);
        let node = NodeId::from_u64(id, 16);
        let g1 = policy.group_of(&own, &node, bucket_index);
        let g2 = policy.group_of(&own, &node, bucket_index);
        prop_assert_eq!(g1, g2);
        prop_assert!(g1 < (1u64 << group_bits.min(8)));
    }
}
