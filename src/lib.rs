//! # kademlia-resilience
//!
//! Umbrella crate for the full reproduction of Heck, Kieselmann & Wacker,
//! *Evaluating Connection Resilience for the Overlay Network Kademlia*
//! (2017). It re-exports the workspace crates so applications can depend on
//! a single package:
//!
//! * [`dessim`] — deterministic discrete-event simulation kernel (the
//!   PeerSim substitute).
//! * [`kademlia`] — the Kademlia overlay protocol running on `dessim`.
//! * [`flowgraph`] — directed graphs, Even's transformation and max-flow
//!   solvers (the HIPR substitute).
//! * [`kad_resilience`] — vertex-connectivity and resilience analysis (the
//!   paper's primary contribution).
//! * [`kad_experiments`] — the scenario matrix and figure/table harness.
//!
//! # Quickstart
//!
//! Simulate a small network, snapshot it, and measure its resilience:
//!
//! ```
//! use kademlia_resilience::prelude::*;
//!
//! let config = ScenarioBuilder::quick(64, 20).seed(7).build();
//! let outcome = run_scenario(&config);
//! let last = outcome.snapshots.last().expect("snapshots recorded");
//! println!(
//!     "κ(D) = {} → tolerates {} compromised nodes",
//!     last.report.min_connectivity,
//!     last.report.resilience()
//! );
//! ```

pub use dessim;
pub use flowgraph;
pub use kad_experiments;
pub use kad_resilience;
pub use kademlia;

/// Convenience re-exports covering the common end-to-end workflow.
pub mod prelude {
    pub use dessim::time::SimTime;
    pub use flowgraph::{DiGraph, EvenNetwork};
    pub use kad_experiments::runner::run_scenario;
    pub use kad_experiments::scenario::{Scenario, ScenarioBuilder};
    pub use kad_resilience::report::ConnectivityReport;
    pub use kad_resilience::resilience;
    pub use kademlia::config::KademliaConfig;
    pub use kademlia::id::NodeId;
}
