//! Smart-camera-network scenario (the paper's first CPS motivation).
//!
//! An industrial site runs a few hundred networked cameras that coordinate
//! tracking via a Kademlia overlay. Cameras occasionally fail or get taken
//! down for maintenance (churn 0/1 after stabilization). The operator
//! wants to know: *how many cameras can an attacker silence before
//! tracking hand-off between any two cameras becomes impossible?*
//!
//! ```text
//! cargo run --release --example smart_camera_network
//! ```

use kademlia_resilience::kad_experiments::runner::run_scenario;
use kademlia_resilience::kad_experiments::scenario::{ChurnRate, ScenarioBuilder, TrafficModel};
use kademlia_resilience::kad_resilience::resilience;

fn main() {
    // 100 cameras (the paper's SCN uses 250; shrink for example runtime),
    // k = 20 (Kademlia default), staleness s = 1 for fast failure
    // detection, continuous tracking traffic.
    let mut builder = ScenarioBuilder::quick(100, 20);
    builder
        .name("smart-camera-network")
        .seed(7)
        .traffic(TrafficModel {
            lookups_per_min: 10,
            stores_per_min: 1,
        })
        .churn(ChurnRate::ZERO_ONE)
        .churn_minutes(30)
        .snapshot_minutes(10);
    let scenario = builder.build();

    println!(
        "simulating {} cameras, k = {}, churn {} after minute {}…\n",
        scenario.size,
        scenario.protocol.k,
        scenario.churn.label(),
        scenario.stabilization_minutes
    );
    let outcome = run_scenario(&scenario);

    println!(" time(min)  cameras  κ_min  tolerated attackers");
    for snap in &outcome.snapshots {
        println!(
            "  {:>7.0}  {:>7}  {:>5}  {:>19}",
            snap.time_min,
            snap.network_size,
            snap.report.min_connectivity,
            snap.report.resilience(),
        );
    }

    let stabilized = outcome
        .snapshots
        .iter()
        .rfind(|s| s.time_min >= 60.0 && s.time_min <= scenario.stabilization_minutes as f64);
    if let Some(snap) = stabilized {
        let kappa = snap.report.min_connectivity;
        println!(
            "\nafter stabilization: κ(D) = {kappa} → the overlay is {}-resilient",
            resilience::resilience_from_connectivity(kappa)
        );
        println!(
            "to survive a = 10 compromised cameras you need κ > 10; \
             the paper's rule of thumb is k > r, so k = {} {}",
            scenario.protocol.k,
            if resilience::tolerates(kappa, 10) {
                "suffices here"
            } else {
                "is not yet enough here"
            }
        );
    }
}
