//! Equation 2 made concrete: what does `κ(D) > r ≥ a` buy you against an
//! *optimal* attacker?
//!
//! This example measures a network's connectivity, extracts an actual
//! minimum vertex cut (the optimal attack set), and shows that (a) any
//! attack below the resilience bound fails, and (b) the min-cut attack at
//! budget κ succeeds — the bound is tight.
//!
//! ```text
//! cargo run --release --example attack_resilience
//! ```

use kademlia_resilience::flowgraph::generators::random_k_out_symmetric;
use kademlia_resilience::flowgraph::mincut::{cut_disconnects, min_vertex_cut};
use kademlia_resilience::kad_resilience::attack::{simulate_attack, AttackStrategy};
use kademlia_resilience::kad_resilience::graph::exact_connectivity;
use kademlia_resilience::kad_resilience::AnalysisConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);
    // A Kademlia-like overlay graph: 80 nodes, 6 mutual contacts each.
    let g = random_k_out_symmetric(80, 6, &mut rng);
    println!(
        "overlay graph: {} nodes, {} edges, reciprocity {:.2}",
        g.node_count(),
        g.edge_count(),
        g.reciprocity()
    );

    let config = AnalysisConfig::default();
    let kappa = exact_connectivity(&g, &config);
    let resilience = kappa.saturating_sub(1);
    println!("exact connectivity κ(D) = {kappa} → resilience r = {resilience}");

    // (a) Random attacks within the bound never disconnect the network.
    let trials = 100;
    let mut survived = 0;
    for _ in 0..trials {
        let outcome = simulate_attack(&g, resilience as usize, AttackStrategy::Random, &mut rng)
            .expect("budget r < n");
        if outcome.survivors_connected {
            survived += 1;
        }
    }
    println!("random attacks with budget r = {resilience}: survived {survived}/{trials} (must be {trials}/{trials})");
    assert_eq!(survived, trials, "Equation 2 guarantee violated!");

    // (b) The bound is tight: a minimum vertex cut of size κ disconnects
    // some pair.
    let mut tight = None;
    for v in 0..g.node_count() as u32 {
        for w in 0..g.node_count() as u32 {
            if let Some(cut) = min_vertex_cut(&g, v, w) {
                if cut.connectivity == kappa {
                    tight = Some((v, w, cut));
                    break;
                }
            }
        }
        if tight.is_some() {
            break;
        }
    }
    let (v, w, cut) = tight.expect("some pair realizes the minimum");
    println!(
        "optimal attack: removing the {} nodes {:?} severs every path {v} → {w}",
        cut.vertices.len(),
        cut.vertices
    );
    assert!(cut_disconnects(&g, v, w, &cut.vertices));
    println!("verified: the pair is disconnected after the cut — the κ bound is tight");
}
