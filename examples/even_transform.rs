//! Figure 1 of the paper, replayed: Even's vertex-splitting transformation
//! turns vertex connectivity into max flow.
//!
//! The 9-vertex example graph has maximum *edge* flow 3 from `a` to `i`,
//! but vertex connectivity 1 — all three edge-disjoint paths squeeze
//! through vertex `e`. The transformed graph exposes that bottleneck to any
//! max-flow solver.
//!
//! ```text
//! cargo run --release --example even_transform
//! ```

use kademlia_resilience::flowgraph::dimacs;
use kademlia_resilience::flowgraph::even::{unit_flow_network, EvenNetwork};
use kademlia_resilience::flowgraph::generators::paper_figure1;
use kademlia_resilience::flowgraph::maxflow::{Dinic, MaxFlow};
use kademlia_resilience::flowgraph::mincut::min_vertex_cut;
use kademlia_resilience::flowgraph::paths::vertex_disjoint_paths;

fn main() {
    let g = paper_figure1();
    let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i"];
    let (a, i) = (0u32, 8u32);

    println!(
        "Figure 1 example graph: {} vertices, {} edges",
        g.node_count(),
        g.edge_count()
    );
    for (u, v) in g.edges() {
        print!("{}→{} ", names[u as usize], names[v as usize]);
    }
    println!("\n");

    // (a) the original graph: maximum flow (edge connectivity) is 3.
    let mut unit = unit_flow_network(&g);
    let edge_flow = Dinic::new().max_flow(&mut unit, a, i, None);
    println!("max flow a→i in the original graph D:      {edge_flow}");

    // (b) the transformed graph: max flow equals vertex connectivity = 1.
    let mut even = EvenNetwork::from_graph(&g);
    let kappa = even
        .vertex_connectivity(&Dinic::new(), a, i, None)
        .expect("a and i are non-adjacent");
    println!("max flow a''→i' in the transformed D':     {kappa}");
    println!(
        "transformed sizes: {} vertices, {} arcs (paper: 2n and m+n)",
        even.network().node_count(),
        even.network().arc_count()
    );

    // Which vertex is the bottleneck?
    let cut = min_vertex_cut(&g, a, i).expect("non-adjacent");
    let cut_names: Vec<&str> = cut.vertices.iter().map(|&v| names[v as usize]).collect();
    println!("minimum vertex cut: {{{}}}", cut_names.join(", "));

    // And the Menger witness: the single vertex-disjoint path.
    let paths = vertex_disjoint_paths(&g, a, i).expect("non-adjacent");
    for path in &paths {
        let p: Vec<&str> = path.iter().map(|&v| names[v as usize]).collect();
        println!("node-disjoint path: {}", p.join(" → "));
    }

    // The DIMACS file the authors would have fed to HIPR.
    let problem = dimacs::write(
        even.network(),
        EvenNetwork::out_vertex(a),
        EvenNetwork::in_vertex(i),
        "Figure 1 transformed graph (Even)",
    );
    println!("\nDIMACS max-flow problem for HIPR:\n{problem}");
}
