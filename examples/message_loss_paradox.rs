//! The paper's most counter-intuitive finding, reproduced in miniature:
//! **message loss increases connectivity** (Section 5.8, Simulation J).
//!
//! Failed round trips evict contacts from routing tables, freeing bucket
//! slots for *new* contacts; the network keeps re-wiring itself and ends up
//! better connected than the frozen no-loss topology. (Loss still hurts
//! latency and lookup quality — the paper is explicit that this is not a
//! free lunch.)
//!
//! ```text
//! cargo run --release --example message_loss_paradox
//! ```

use kademlia_resilience::dessim::loss::LossScenario;
use kademlia_resilience::kad_experiments::runner::run_scenario;
use kademlia_resilience::kad_experiments::scenario::{ScenarioBuilder, TrafficModel};

fn main() {
    println!("simulating the same 80-node network under four loss scenarios…\n");
    println!(" loss     final κ_min  final κ_avg  timeouts");
    let mut results = Vec::new();
    for loss in LossScenario::ALL {
        let mut builder = ScenarioBuilder::quick(80, 10);
        builder
            .name(format!("loss-{loss}"))
            .seed(31)
            .loss(loss)
            .staleness_limit(1)
            .traffic(TrafficModel {
                lookups_per_min: 10,
                stores_per_min: 1,
            })
            .churn_minutes(60)
            .snapshot_minutes(20);
        let outcome = run_scenario(&builder.build());
        let last = outcome.final_snapshot().expect("snapshots");
        let avg = last
            .report
            .avg_connectivity
            .expect("full-flow sweep reports an average");
        println!(
            " {:<8} {:>11} {:>12.1} {:>9}",
            loss.to_string(),
            last.report.min_connectivity,
            avg,
            outcome.counters.get("rpc_timeout"),
        );
        results.push((loss, avg));
    }

    let none_avg = results
        .iter()
        .find(|(l, _)| *l == LossScenario::None)
        .map(|(_, a)| *a)
        .expect("none scenario present");
    let high_avg = results
        .iter()
        .find(|(l, _)| *l == LossScenario::High)
        .map(|(_, a)| *a)
        .expect("high scenario present");
    println!(
        "\nwith s = 1, high loss yields {:.1} average connectivity vs {:.1} without loss — {}",
        high_avg,
        none_avg,
        if high_avg > none_avg {
            "the paradox reproduces: loss helps connectivity"
        } else {
            "at this miniature scale the effect is within noise; run `repro fig12` for the full sweep"
        }
    );
}
