//! Quickstart: simulate a Kademlia overlay, snapshot it, and measure how
//! many compromised nodes it can tolerate.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use kademlia_resilience::prelude::*;

fn main() {
    // A 64-node network with the Kademlia default bucket size scaled down
    // (k = 8) so the example finishes in seconds.
    let scenario = ScenarioBuilder::quick(64, 8).seed(2024).build();
    println!(
        "simulating {} nodes (k = {}, α = {}, b = {} bits) for {} minutes…",
        scenario.size,
        scenario.protocol.k,
        scenario.protocol.alpha,
        scenario.protocol.bits,
        scenario.end_minutes()
    );

    let outcome = run_scenario(&scenario);

    println!("\n time(min)  size   κ_min   κ_avg   resilience");
    for snap in &outcome.snapshots {
        println!(
            "  {:>7.0}  {:>5}  {:>5}  {:>6.1}  {:>10}",
            snap.time_min,
            snap.network_size,
            snap.report.min_connectivity,
            snap.report.avg_connectivity.unwrap_or(f64::NAN),
            snap.report.resilience()
        );
    }

    let last = outcome.final_snapshot().expect("snapshots recorded");
    println!(
        "\nfinal connectivity κ(D) = {} → the network tolerates {} \
         simultaneously compromised nodes (Equation 2: κ > r ≥ a)",
        last.report.min_connectivity,
        last.report.resilience()
    );
    println!(
        "messages sent: {}, lookups: {}, disseminations: {}",
        outcome.counters.get("msg_sent"),
        outcome.counters.get("lookup_started"),
        outcome.counters.get("store_started"),
    );
}
