//! Distributed intrusion-detection scenario (the paper's second CPS
//! motivation): IDS sensors spread over many corporate branches share
//! alerts through a Kademlia overlay and must keep communicating while an
//! attacker actively knocks sensors out.
//!
//! This example sizes the bucket parameter `k` for a required attacker
//! budget using Equation 2 (`κ > r ≥ a`), then validates the choice with
//! attack simulations on the measured connectivity graph.
//!
//! ```text
//! cargo run --release --example intrusion_detection
//! ```

use kademlia_resilience::kad_experiments::scenario::{ScenarioBuilder, TrafficModel};
use kademlia_resilience::kad_resilience::attack::{simulate_attack, AttackStrategy};
use kademlia_resilience::kad_resilience::resilience;
use kademlia_resilience::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // Requirement: the alert mesh must survive a = 6 simultaneously
    // compromised sensors. Equation 2 needs κ(D) > 6, and the paper's
    // dimensioning rule says the bucket size must exceed the target
    // resilience: k ≥ 7. We double it for headroom.
    let attacker_budget = 6u64;
    let k = resilience::required_bucket_size(attacker_budget) * 2;
    println!(
        "target: tolerate a = {attacker_budget} compromised sensors → need κ > {attacker_budget}, pick k = {k}"
    );

    let mut builder = ScenarioBuilder::quick(120, k);
    builder
        .name("intrusion-detection")
        .seed(99)
        .traffic(TrafficModel {
            lookups_per_min: 10,
            stores_per_min: 1,
        });
    let scenario = builder.build();
    let outcome = run_scenario(&scenario);
    let last = outcome.final_snapshot().expect("snapshots");
    let kappa = last.report.min_connectivity;
    println!(
        "measured after stabilization: κ(D) = {kappa} (resilience r = {})",
        last.report.resilience()
    );
    assert!(
        resilience::tolerates(kappa, attacker_budget),
        "dimensioning failed: κ = {kappa} does not exceed a = {attacker_budget}"
    );

    // Validate empirically: rebuild the graph from a fresh run's final
    // snapshot and bombard it with attacks at the tolerated budget.
    let graph = {
        use kademlia_resilience::kad_resilience::snapshot_to_digraph;
        use kademlia_resilience::kademlia::network::SimNetwork;
        let transport = kademlia_resilience::dessim::transport::Transport::default();
        let mut net = SimNetwork::new(scenario.protocol, transport, scenario.seed);
        let mut prev = None;
        for _ in 0..scenario.size {
            let addr = net.spawn_node();
            net.join(addr, prev);
            prev = Some(addr);
            net.run_until(
                net.now() + kademlia_resilience::dessim::time::SimDuration::from_secs(15),
            );
        }
        net.run_until(SimTime::from_minutes(120));
        snapshot_to_digraph(&net.snapshot())
    };

    let mut rng = SmallRng::seed_from_u64(5);
    let trials = 30;
    let mut survived_random = 0;
    let mut survived_hubs = 0;
    for _ in 0..trials {
        if simulate_attack(
            &graph,
            attacker_budget as usize,
            AttackStrategy::Random,
            &mut rng,
        )
        .expect("budget < n")
        .survivors_connected
        {
            survived_random += 1;
        }
        if simulate_attack(
            &graph,
            attacker_budget as usize,
            AttackStrategy::HighestDegree,
            &mut rng,
        )
        .expect("budget < n")
        .survivors_connected
        {
            survived_hubs += 1;
        }
    }
    println!(
        "attack validation over {trials} trials with budget {attacker_budget}: \
         random kills survived {survived_random}/{trials}, hub kills survived {survived_hubs}/{trials}"
    );
}
